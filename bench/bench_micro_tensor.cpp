// google-benchmark microbenchmarks for the tensor/nn kernels the trainers
// spend their time in. With --kernels_json=PATH the binary instead emits a
// machine-readable GFLOP/s report (tiled vs naive per shape, dispatch
// overhead, pool counters) — see kernels_json.hpp.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "kernels_json.hpp"
#include "nn/layer_math.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace weipipe {
namespace {

Tensor make_randn(std::vector<std::int64_t> shape, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn(std::move(shape), rng);
}

void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Tensor a = make_randn({n, n}, 1);
  const Tensor b = make_randn({n, n}, 2);
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulBt(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Tensor a = make_randn({n, n}, 1);
  const Tensor b = make_randn({n, n}, 2);
  for (auto _ : state) {
    Tensor c = matmul_bt(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulBt)->Arg(64)->Arg(128)->Arg(256);

void BM_SoftmaxRows(benchmark::State& state) {
  const std::int64_t rows = 256;
  const std::int64_t cols = state.range(0);
  Tensor x = make_randn({rows, cols}, 3);
  for (auto _ : state) {
    Tensor y = x;
    kernels::softmax_rows(y.data(), rows, cols, nullptr);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_SoftmaxRows)->Arg(128)->Arg(1024);

void BM_AttentionNaive(benchmark::State& state) {
  const std::int64_t S = state.range(0);
  const std::int64_t G = 2;
  const std::int64_t nh = 4;
  const std::int64_t dh = 16;
  const Tensor q = make_randn({G * S, nh * dh}, 4);
  const Tensor k = make_randn({G * S, nh * dh}, 5);
  const Tensor v = make_randn({G * S, nh * dh}, 6);
  Tensor out({G * S, nh * dh});
  Tensor probs({G, nh, S, S});
  for (auto _ : state) {
    attention_forward_naive(q.data(), k.data(), v.data(), out.data(),
                            probs.data(), G, S, nh, dh);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_AttentionNaive)->Arg(64)->Arg(128);

void BM_AttentionStream(benchmark::State& state) {
  const std::int64_t S = state.range(0);
  const std::int64_t G = 2;
  const std::int64_t nh = 4;
  const std::int64_t dh = 16;
  const Tensor q = make_randn({G * S, nh * dh}, 4);
  const Tensor k = make_randn({G * S, nh * dh}, 5);
  const Tensor v = make_randn({G * S, nh * dh}, 6);
  Tensor out({G * S, nh * dh});
  Tensor lse({G, nh, S});
  for (auto _ : state) {
    attention_forward_stream(q.data(), k.data(), v.data(), out.data(),
                             lse.data(), G, S, nh, dh);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_AttentionStream)->Arg(64)->Arg(128);

void BM_RmsNorm(benchmark::State& state) {
  const std::int64_t rows = 512;
  const std::int64_t dim = state.range(0);
  const Tensor x = make_randn({rows, dim}, 7);
  const Tensor gain = Tensor::full({dim}, 1.0f);
  Tensor y({rows, dim});
  Tensor inv({rows});
  for (auto _ : state) {
    rmsnorm_forward(x.data(), gain.data(), y.data(), inv.data(), rows, dim,
                    1e-5f);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * dim);
}
BENCHMARK(BM_RmsNorm)->Arg(64)->Arg(512);

// ---- --kernels_json mode ----------------------------------------------------

using KernelFn = void (*)(const float*, const float*, float*, std::int64_t,
                          std::int64_t, std::int64_t, bool);

double gemm_gflops(KernelFn fn, std::int64_t m, std::int64_t k, std::int64_t n,
                   int reps) {
  const Tensor a = make_randn({m, k}, 1);
  const Tensor b = make_randn({k, n}, 2);  // pointer-level: size k*n == n*k
  Tensor c({m, n});
  fn(a.data(), b.data(), c.data(), m, k, n, false);  // warm (packs scratch)
  const double secs = bench::best_seconds(
      reps, [&] { fn(a.data(), b.data(), c.data(), m, k, n, false); });
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
         static_cast<double>(n) / secs / 1e9;
}

// Mean cost of pushing one empty dispatch through the arena (publish slot +
// wake workers + claim loop + join) — the fixed overhead every parallel
// kernel pays.
double dispatch_overhead_ns(int iters) {
  ThreadPool& pool = ThreadPool::global();
  auto noop = [](std::size_t, std::size_t) {};
  const std::size_t n = 16 * (pool.size() + 1);  // forces the dispatch path
  pool.for_range(0, n, noop, 1);  // warm
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    pool.for_range(0, n, noop, 1);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
}

int write_kernels_json(const std::string& path, bool smoke) {
  const ThreadPoolStats before = ThreadPool::global().stats();
  struct Row {
    const char* name;
    const char* impl;
    std::int64_t m, k, n;
    double gflops;
  };
  std::vector<Row> rows;
  const int reps = smoke ? 2 : 5;
  const std::vector<std::int64_t> sizes =
      smoke ? std::vector<std::int64_t>{64, 128}
            : std::vector<std::int64_t>{64, 128, 256, 512};
  for (std::int64_t s : sizes) {
    rows.push_back({"matmul", "tiled", s, s, s,
                    gemm_gflops(&kernels::matmul, s, s, s, reps)});
    rows.push_back({"matmul", "naive", s, s, s,
                    gemm_gflops(&kernels::matmul_naive, s, s, s, reps)});
  }
  const std::int64_t sq = smoke ? 128 : 256;
  rows.push_back({"matmul_bt", "tiled", sq, sq, sq,
                  gemm_gflops(&kernels::matmul_bt, sq, sq, sq, reps)});
  rows.push_back({"matmul_bt", "naive", sq, sq, sq,
                  gemm_gflops(&kernels::matmul_bt_naive, sq, sq, sq, reps)});
  rows.push_back({"matmul_at", "tiled", sq, sq, sq,
                  gemm_gflops(&kernels::matmul_at, sq, sq, sq, reps)});
  rows.push_back({"matmul_at", "naive", sq, sq, sq,
                  gemm_gflops(&kernels::matmul_at_naive, sq, sq, sq, reps)});
  // The per-kernel-grain case: tall-skinny bt (weight-gradient shape with a
  // tiny output) must not be slower than naive from over-parallelizing.
  const std::int64_t tall = smoke ? 128 : 512;
  rows.push_back({"matmul_bt_tiny_n", "tiled", tall, tall, 8,
                  gemm_gflops(&kernels::matmul_bt, tall, tall, 8, reps)});
  rows.push_back({"matmul_bt_tiny_n", "naive", tall, tall, 8,
                  gemm_gflops(&kernels::matmul_bt_naive, tall, tall, 8, reps)});

  const double overhead_ns = dispatch_overhead_ns(smoke ? 200 : 2000);
  const ThreadPoolStats after = ThreadPool::global().stats();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_micro_tensor\",\n");
  std::fprintf(f, "  \"simd\": \"%s\",\n  \"threads\": %zu,\n",
               bench::simd_label(), ThreadPool::global().size());
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"impl\": \"%s\", \"m\": %lld, "
                 "\"k\": %lld, \"n\": %lld, \"gflops\": %.3f}%s\n",
                 r.name, r.impl, static_cast<long long>(r.m),
                 static_cast<long long>(r.k), static_cast<long long>(r.n),
                 r.gflops, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"dispatch_overhead_ns\": %.1f,\n", overhead_ns);
  std::fprintf(f,
               "  \"pool\": {\"dispatches\": %llu, \"serial_runs\": %llu, "
               "\"items\": %llu, \"chunks\": %llu, \"steals\": %llu}\n}\n",
               static_cast<unsigned long long>(after.dispatches -
                                               before.dispatches),
               static_cast<unsigned long long>(after.serial_runs -
                                               before.serial_runs),
               static_cast<unsigned long long>(after.items - before.items),
               static_cast<unsigned long long>(after.chunks - before.chunks),
               static_cast<unsigned long long>(after.steals - before.steals));
  std::fclose(f);
  std::printf("wrote %s (%zu kernel rows)\n", path.c_str(), rows.size());
  return 0;
}

}  // namespace
}  // namespace weipipe

int main(int argc, char** argv) {
  weipipe::bench::KernelsJsonArgs args =
      weipipe::bench::parse_kernels_json_args(argc, argv);
  if (!args.json_path.empty()) {
    return weipipe::write_kernels_json(args.json_path, args.smoke);
  }
  int rest_argc = static_cast<int>(args.rest.size());
  benchmark::Initialize(&rest_argc, args.rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, args.rest.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
