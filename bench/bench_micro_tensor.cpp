// google-benchmark microbenchmarks for the tensor/nn kernels the trainers
// spend their time in.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "nn/layer_math.hpp"
#include "tensor/ops.hpp"

namespace weipipe {
namespace {

Tensor make_randn(std::vector<std::int64_t> shape, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn(std::move(shape), rng);
}

void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Tensor a = make_randn({n, n}, 1);
  const Tensor b = make_randn({n, n}, 2);
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulBt(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Tensor a = make_randn({n, n}, 1);
  const Tensor b = make_randn({n, n}, 2);
  for (auto _ : state) {
    Tensor c = matmul_bt(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulBt)->Arg(64)->Arg(128)->Arg(256);

void BM_SoftmaxRows(benchmark::State& state) {
  const std::int64_t rows = 256;
  const std::int64_t cols = state.range(0);
  Tensor x = make_randn({rows, cols}, 3);
  for (auto _ : state) {
    Tensor y = x;
    kernels::softmax_rows(y.data(), rows, cols, nullptr);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_SoftmaxRows)->Arg(128)->Arg(1024);

void BM_AttentionNaive(benchmark::State& state) {
  const std::int64_t S = state.range(0);
  const std::int64_t G = 2;
  const std::int64_t nh = 4;
  const std::int64_t dh = 16;
  const Tensor q = make_randn({G * S, nh * dh}, 4);
  const Tensor k = make_randn({G * S, nh * dh}, 5);
  const Tensor v = make_randn({G * S, nh * dh}, 6);
  Tensor out({G * S, nh * dh});
  Tensor probs({G, nh, S, S});
  for (auto _ : state) {
    attention_forward_naive(q.data(), k.data(), v.data(), out.data(),
                            probs.data(), G, S, nh, dh);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_AttentionNaive)->Arg(64)->Arg(128);

void BM_AttentionStream(benchmark::State& state) {
  const std::int64_t S = state.range(0);
  const std::int64_t G = 2;
  const std::int64_t nh = 4;
  const std::int64_t dh = 16;
  const Tensor q = make_randn({G * S, nh * dh}, 4);
  const Tensor k = make_randn({G * S, nh * dh}, 5);
  const Tensor v = make_randn({G * S, nh * dh}, 6);
  Tensor out({G * S, nh * dh});
  Tensor lse({G, nh, S});
  for (auto _ : state) {
    attention_forward_stream(q.data(), k.data(), v.data(), out.data(),
                             lse.data(), G, S, nh, dh);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_AttentionStream)->Arg(64)->Arg(128);

void BM_RmsNorm(benchmark::State& state) {
  const std::int64_t rows = 512;
  const std::int64_t dim = state.range(0);
  const Tensor x = make_randn({rows, dim}, 7);
  const Tensor gain = Tensor::full({dim}, 1.0f);
  Tensor y({rows, dim});
  Tensor inv({rows});
  for (auto _ : state) {
    rmsnorm_forward(x.data(), gain.data(), y.data(), inv.data(), rows, dim,
                    1e-5f);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * dim);
}
BENCHMARK(BM_RmsNorm)->Arg(64)->Arg(512);

}  // namespace
}  // namespace weipipe

BENCHMARK_MAIN();
