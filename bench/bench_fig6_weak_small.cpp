// Figure 6 reproduction: small-scale weak scaling. 4 -> 16 GPUs (4 GPUs per
// NVLink server, Ethernet between servers), global batch grows 64 -> 256
// sequences (N = batch/G microbatches), L=16. Bars: total kilo-tokens/s;
// line: tokens/s/GPU. The paper's claim: WeiPipe's per-GPU throughput stays
// ~flat while 1F1B/ZB/FSDP decay as Ethernet hops enter the ring.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hpp"

using namespace weipipe;
using namespace weipipe::bench;

int main() {
  const std::int64_t G = 8;  // batch below counts microbatches
  const sim::Strategy strategies[] = {
      sim::Strategy::k1F1B, sim::Strategy::kZB1, sim::Strategy::kZB2,
      sim::Strategy::kFSDP, sim::Strategy::kWeiPipeInterleave};
  const int gpus[] = {4, 8, 16};

  std::printf(
      "== Figure 6: small-scale weak scaling (batch 64->256 microbatches, 4 GPU "
      "NVLink servers + Ethernet) ==\n");
  std::printf("%8s |", "GPUs");
  for (auto s : strategies) {
    std::printf(" %20s |", sim::to_string(s));
  }
  std::printf("   (total kilo-tok/s, [per-GPU tok/s])\n");

  std::map<int, std::map<int, Cell>> grid;  // [gpus][strategy index]
  for (int p : gpus) {
    const std::int64_t n = 16 * p;  // batch 64 -> 256 microbatches
    sim::ModelDims dims;
    dims.hidden = 2048;
    dims.seq = 8192;
    dims.microbatch = G;
    dims.layers = 16;
    dims.heads = 32;
    // Scaling figures train synthetic data; a compact tokenizer keeps the
    // LM head from skewing stage balance at layer-per-rank granularity.
    dims.vocab = 4096;
    const sim::Topology topo = sim::Topology::nvlink_ethernet(p, 4);
    std::printf("%8d |", p);
    for (int i = 0; i < 5; ++i) {
      const Cell c = run_cell(strategies[i], dims, n, topo);
      grid[p][i] = c;
      if (c.oom) {
        std::printf(" %20s |", "OOM");
      } else {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%6.1f [%6.0f]",
                      c.tokens_per_s_per_gpu * p / 1000.0,
                      c.tokens_per_s_per_gpu);
        std::printf(" %20s |", buf);
      }
    }
    std::printf("\n");
  }

  std::printf("\n== shape checks vs paper Figure 6 ==\n");
  auto retention = [&](int idx) {
    const Cell& lo = grid[4][idx];
    const Cell& hi = grid[16][idx];
    if (lo.oom || hi.oom) {
      return 0.0;
    }
    return hi.tokens_per_s_per_gpu / lo.tokens_per_s_per_gpu;
  };
  const double weipipe_keep = retention(4);
  const double f1b_keep = retention(0);
  const double fsdp_keep = retention(3);
  char detail[160];
  std::snprintf(detail, sizeof(detail),
                "per-GPU retention 4->16 GPUs: WeiPipe %.2f vs 1F1B %.2f, "
                "FSDP %.2f",
                weipipe_keep, f1b_keep, fsdp_keep);
  shape_check("weipipe-weak-scales-best",
              weipipe_keep >= f1b_keep && weipipe_keep >= fsdp_keep, detail);
  // Stage-granularity imbalance (L=16 over 16 ranks + a ~1-layer LM head)
  // paces every pipeline here; the paper's figure likewise shows everyone
  // declining, WeiPipe least.
  shape_check("weipipe-per-gpu-stays-high", weipipe_keep > 0.55, detail);
  return 0;
}
