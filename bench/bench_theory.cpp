// §4.2.4 / Table 1 reproduction: the paper's analytic comparison.
//  1. The activation-vs-weight crossover: activation-passing moves
//     2*G*S*H bytes per microbatch per boundary; weight-passing moves
//     3 * 12H^2 * (L/P) per turn. The ratio GS/(12H) decides who is cheaper
//     (paper §2/§4.1); we sweep it.
//  2. Total Bandwidth Usage (TBW) per strategy from the DES byte counters.
//  3. Memory accounting per strategy family (incl. the Flash-Attention/ZB
//     interaction of §6.1.1).
#include <cstdio>

#include "bench_util.hpp"
#include "sim/cost_model.hpp"

using namespace weipipe;
using namespace weipipe::bench;

int main() {
  std::printf("== Crossover: activation bytes vs weight bytes per layer ==\n");
  std::printf("(ratio = G*S / (12*H); >1 means weights are the smaller "
              "message — WeiPipe's regime)\n");
  std::printf("%5s %6s %3s | %12s %12s %8s\n", "H", "S", "G", "act MB/mb",
              "weights MB/layer", "ratio");
  for (std::int64_t h : {1024LL, 2048LL, 4096LL}) {
    for (std::int64_t s : {512LL, 4096LL, 16384LL}) {
      const std::int64_t g = 8;
      const double act_mb = static_cast<double>(g) * s * h * 2.0 / 1e6;
      const double w_mb = 12.0 * h * h * 2.0 / 1e6;
      std::printf("%5lld %6lld %3lld | %12.1f %12.1f %8.2f\n",
                  static_cast<long long>(h), static_cast<long long>(s),
                  static_cast<long long>(g), act_mb, w_mb,
                  static_cast<double>(g) * s / (12.0 * h));
    }
  }

  std::printf("\n== TBW: total wire bytes per iteration (16 GPUs, N=64) ==\n");
  std::printf("(WeiPipe volume is independent of G and S; activation-passing "
              "scales with G*S)\n");
  const int P = 16;
  const sim::Topology topo = sim::Topology::nvlink(P, 8);
  std::printf("%6s %3s | %14s %14s %14s\n", "S", "G", "1F1B GB", "FSDP GB",
              "WeiPipe GB");
  double weipipe_gb_min = 1e18;
  double weipipe_gb_max = 0.0;
  double f1b_gb_first = 0.0;
  double f1b_gb_last = 0.0;
  const std::int64_t sweeps[][2] = {{2048, 4}, {4096, 8}, {8192, 8},
                                    {16384, 16}};
  for (const auto& sw : sweeps) {
    sim::ModelDims dims;
    dims.hidden = 2048;
    dims.seq = sw[0];
    dims.microbatch = sw[1];
    dims.layers = 32;
    const Cell f1b = run_cell(sim::Strategy::k1F1B, dims, 64, topo);
    const Cell fsdp = run_cell(sim::Strategy::kFSDP, dims, 64, topo);
    const Cell wp = run_cell(sim::Strategy::kWeiPipeInterleave, dims, 64,
                             topo);
    std::printf("%6lld %3lld | %14.1f %14.1f %14.1f\n",
                static_cast<long long>(sw[0]), static_cast<long long>(sw[1]),
                f1b.wire_gb, fsdp.wire_gb, wp.wire_gb);
    weipipe_gb_min = std::min(weipipe_gb_min, wp.wire_gb);
    weipipe_gb_max = std::max(weipipe_gb_max, wp.wire_gb);
    if (sw[0] == 2048) {
      f1b_gb_first = f1b.wire_gb;
    }
    if (sw[0] == 16384) {
      f1b_gb_last = f1b.wire_gb;
    }
  }

  std::printf("\n== Memory accounting (H=2048, S=8192, G=8, P=16) ==\n");
  sim::ModelDims dims;
  dims.hidden = 2048;
  dims.seq = 8192;
  dims.microbatch = 8;
  dims.layers = 32;
  const sim::GpuSpec gpu;
  const sim::CostModel cm(dims, gpu, {});
  std::printf("  per-layer act (recompute):        %8.2f GB\n",
              cm.act_mem_layer_bytes() / 1e9);
  const sim::CostModel cm_full(dims, gpu, {false, true});
  std::printf("  per-layer act (full, flash):      %8.2f GB\n",
              cm_full.act_mem_layer_bytes() / 1e9);
  const sim::CostModel cm_noflash(dims, gpu, {false, false});
  std::printf("  per-layer act (full, no flash):   %8.2f GB  <- S^2 blowup\n",
              cm_noflash.act_mem_layer_bytes() / 1e9);
  std::printf("  static, WeiPipe rank:             %8.2f GB\n",
              cm.static_mem_weipipe(16) / 1e9);
  std::printf("  static, pipeline stage:           %8.2f GB\n",
              cm.static_mem_pipeline(16) / 1e9);
  std::printf("  static, FSDP rank:                %8.2f GB\n",
              cm.static_mem_fsdp(16) / 1e9);

  std::printf("\n== shape checks vs paper §4.2.4 ==\n");
  char detail[160];
  std::snprintf(detail, sizeof(detail),
                "WeiPipe TBW spread %.1f..%.1f GB across a 16x token sweep",
                weipipe_gb_min, weipipe_gb_max);
  shape_check("weipipe-volume-independent-of-GS",
              weipipe_gb_max < weipipe_gb_min * 1.05, detail);
  std::snprintf(detail, sizeof(detail),
                "1F1B TBW grows %.1fx from S=2k to S=16k",
                f1b_gb_last / f1b_gb_first);
  shape_check("activation-volume-scales-with-GS",
              f1b_gb_last > 4.0 * f1b_gb_first, detail);
  shape_check("flash-attention-removes-S2-term",
              cm_noflash.act_mem_layer_bytes() >
                  8.0 * cm_full.act_mem_layer_bytes(),
              "full internals without flash dominated by S^2 probs");
  return 0;
}
