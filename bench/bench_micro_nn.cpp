// google-benchmark microbenchmarks at the nn layer: full transformer block
// forward/backward, recompute overhead, GQA vs MHA, cross-entropy. With
// --kernels_json=PATH the binary instead emits machine-readable layer-level
// timings (see kernels_json.hpp).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "kernels_json.hpp"
#include "nn/block.hpp"
#include "nn/loss.hpp"

namespace weipipe {
namespace {

ModelConfig bench_cfg(std::int64_t dim, std::int64_t kv_heads = 0) {
  ModelConfig cfg;
  cfg.vocab_size = 256;
  cfg.dim = dim;
  cfg.n_layers = 1;
  cfg.n_heads = 4;
  cfg.n_kv_heads = kv_heads;
  cfg.seq_len = 64;
  return cfg;
}

Microbatch bench_mb(const ModelConfig& cfg) {
  SyntheticDataset data(cfg.vocab_size, 9);
  return data.make(0, 2, cfg.seq_len);
}

void BM_LayerForward(benchmark::State& state) {
  const ModelConfig cfg = bench_cfg(state.range(0));
  TransformerLayerBlock block(cfg);
  Rng rng(1);
  std::vector<float> w(static_cast<std::size_t>(block.param_count()));
  block.init_params(w, rng);
  const Microbatch mb = bench_mb(cfg);
  const Tensor x = Tensor::randn({mb.rows(), cfg.dim}, rng);
  for (auto _ : state) {
    BlockCtx ctx;
    Tensor y = block.forward(std::span<const float>(w.data(), w.size()), mb,
                             x, ctx, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LayerForward)->Arg(64)->Arg(128);

void BM_LayerBackward(benchmark::State& state) {
  const bool recompute = state.range(1) != 0;
  ModelConfig cfg = bench_cfg(state.range(0));
  TransformerLayerBlock block(cfg);
  Rng rng(2);
  std::vector<float> w(static_cast<std::size_t>(block.param_count()));
  block.init_params(w, rng);
  const Microbatch mb = bench_mb(cfg);
  const Tensor x = Tensor::randn({mb.rows(), cfg.dim}, rng);
  const Tensor dy = Tensor::randn({mb.rows(), cfg.dim}, rng);
  BlockCtx ctx;
  (void)block.forward(std::span<const float>(w.data(), w.size()), mb, x, ctx,
                      /*save_internals=*/!recompute);
  std::vector<float> dw(w.size(), 0.0f);
  for (auto _ : state) {
    Tensor dx = block.backward(std::span<const float>(w.data(), w.size()), mb,
                               ctx, dy, std::span<float>(dw.data(), dw.size()));
    benchmark::DoNotOptimize(dx.data());
  }
  state.SetLabel(recompute ? "recompute" : "saved");
}
BENCHMARK(BM_LayerBackward)->Args({64, 0})->Args({64, 1})->Args({128, 0});

void BM_LayerForwardGqa(benchmark::State& state) {
  // 4 query heads over `kv` kv heads: smaller K/V projections.
  const ModelConfig cfg = bench_cfg(128, state.range(0));
  TransformerLayerBlock block(cfg);
  Rng rng(3);
  std::vector<float> w(static_cast<std::size_t>(block.param_count()));
  block.init_params(w, rng);
  const Microbatch mb = bench_mb(cfg);
  const Tensor x = Tensor::randn({mb.rows(), cfg.dim}, rng);
  for (auto _ : state) {
    BlockCtx ctx;
    Tensor y = block.forward(std::span<const float>(w.data(), w.size()), mb,
                             x, ctx, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LayerForwardGqa)->Arg(4)->Arg(2)->Arg(1);

void BM_CrossEntropy(benchmark::State& state) {
  const std::int64_t vocab = state.range(0);
  ModelConfig cfg = bench_cfg(64);
  cfg.vocab_size = vocab;
  const Microbatch mb = bench_mb(cfg);
  Rng rng(4);
  const Tensor logits = Tensor::randn({mb.rows(), vocab}, rng);
  for (auto _ : state) {
    LossResult lr = cross_entropy_loss(logits, mb);
    benchmark::DoNotOptimize(lr.dlogits.data());
  }
  state.SetItemsProcessed(state.iterations() * mb.rows() * vocab);
}
BENCHMARK(BM_CrossEntropy)->Arg(256)->Arg(4096);

// ---- --kernels_json mode ----------------------------------------------------

int write_kernels_json(const std::string& path, bool smoke) {
  const std::int64_t dim = smoke ? 64 : 128;
  const int reps = smoke ? 2 : 5;
  const ModelConfig cfg = bench_cfg(dim);
  TransformerLayerBlock block(cfg);
  Rng rng(1);
  std::vector<float> w(static_cast<std::size_t>(block.param_count()));
  block.init_params(w, rng);
  const Microbatch mb = bench_mb(cfg);
  const Tensor x = Tensor::randn({mb.rows(), cfg.dim}, rng);
  const Tensor dy = Tensor::randn({mb.rows(), cfg.dim}, rng);
  const std::span<const float> ws(w.data(), w.size());

  const double fwd_s = bench::best_seconds(reps, [&] {
    BlockCtx ctx;
    Tensor y = block.forward(ws, mb, x, ctx, true);
    benchmark::DoNotOptimize(y.data());
  });
  BlockCtx ctx;
  (void)block.forward(ws, mb, x, ctx, /*save_internals=*/true);
  std::vector<float> dw(w.size(), 0.0f);
  const double bwd_s = bench::best_seconds(reps, [&] {
    Tensor dx = block.backward(ws, mb, ctx, dy,
                               std::span<float>(dw.data(), dw.size()));
    benchmark::DoNotOptimize(dx.data());
  });
  const std::int64_t vocab = smoke ? 256 : 4096;
  ModelConfig ce_cfg = bench_cfg(64);
  ce_cfg.vocab_size = vocab;
  const Microbatch ce_mb = bench_mb(ce_cfg);
  Rng ce_rng(4);
  const Tensor logits = Tensor::randn({ce_mb.rows(), vocab}, ce_rng);
  const double ce_s = bench::best_seconds(reps, [&] {
    LossResult lr = cross_entropy_loss(logits, ce_mb);
    benchmark::DoNotOptimize(lr.dlogits.data());
  });

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_micro_nn\",\n");
  std::fprintf(f, "  \"simd\": \"%s\",\n  \"threads\": %zu,\n",
               bench::simd_label(), ThreadPool::global().size());
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"layers\": [\n");
  std::fprintf(f,
               "    {\"name\": \"layer_forward\", \"dim\": %lld, "
               "\"rows\": %lld, \"seconds\": %.6e},\n",
               static_cast<long long>(dim), static_cast<long long>(mb.rows()),
               fwd_s);
  std::fprintf(f,
               "    {\"name\": \"layer_backward\", \"dim\": %lld, "
               "\"rows\": %lld, \"seconds\": %.6e},\n",
               static_cast<long long>(dim), static_cast<long long>(mb.rows()),
               bwd_s);
  std::fprintf(f,
               "    {\"name\": \"cross_entropy\", \"vocab\": %lld, "
               "\"rows\": %lld, \"seconds\": %.6e}\n",
               static_cast<long long>(vocab),
               static_cast<long long>(ce_mb.rows()), ce_s);
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace weipipe

int main(int argc, char** argv) {
  weipipe::bench::KernelsJsonArgs args =
      weipipe::bench::parse_kernels_json_args(argc, argv);
  if (!args.json_path.empty()) {
    return weipipe::write_kernels_json(args.json_path, args.smoke);
  }
  int rest_argc = static_cast<int>(args.rest.size());
  benchmark::Initialize(&rest_argc, args.rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, args.rest.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
