// google-benchmark microbenchmarks at the nn layer: full transformer block
// forward/backward, recompute overhead, GQA vs MHA, cross-entropy.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "nn/block.hpp"
#include "nn/loss.hpp"

namespace weipipe {
namespace {

ModelConfig bench_cfg(std::int64_t dim, std::int64_t kv_heads = 0) {
  ModelConfig cfg;
  cfg.vocab_size = 256;
  cfg.dim = dim;
  cfg.n_layers = 1;
  cfg.n_heads = 4;
  cfg.n_kv_heads = kv_heads;
  cfg.seq_len = 64;
  return cfg;
}

Microbatch bench_mb(const ModelConfig& cfg) {
  SyntheticDataset data(cfg.vocab_size, 9);
  return data.make(0, 2, cfg.seq_len);
}

void BM_LayerForward(benchmark::State& state) {
  const ModelConfig cfg = bench_cfg(state.range(0));
  TransformerLayerBlock block(cfg);
  Rng rng(1);
  std::vector<float> w(static_cast<std::size_t>(block.param_count()));
  block.init_params(w, rng);
  const Microbatch mb = bench_mb(cfg);
  const Tensor x = Tensor::randn({mb.rows(), cfg.dim}, rng);
  for (auto _ : state) {
    BlockCtx ctx;
    Tensor y = block.forward(std::span<const float>(w.data(), w.size()), mb,
                             x, ctx, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LayerForward)->Arg(64)->Arg(128);

void BM_LayerBackward(benchmark::State& state) {
  const bool recompute = state.range(1) != 0;
  ModelConfig cfg = bench_cfg(state.range(0));
  TransformerLayerBlock block(cfg);
  Rng rng(2);
  std::vector<float> w(static_cast<std::size_t>(block.param_count()));
  block.init_params(w, rng);
  const Microbatch mb = bench_mb(cfg);
  const Tensor x = Tensor::randn({mb.rows(), cfg.dim}, rng);
  const Tensor dy = Tensor::randn({mb.rows(), cfg.dim}, rng);
  BlockCtx ctx;
  (void)block.forward(std::span<const float>(w.data(), w.size()), mb, x, ctx,
                      /*save_internals=*/!recompute);
  std::vector<float> dw(w.size(), 0.0f);
  for (auto _ : state) {
    Tensor dx = block.backward(std::span<const float>(w.data(), w.size()), mb,
                               ctx, dy, std::span<float>(dw.data(), dw.size()));
    benchmark::DoNotOptimize(dx.data());
  }
  state.SetLabel(recompute ? "recompute" : "saved");
}
BENCHMARK(BM_LayerBackward)->Args({64, 0})->Args({64, 1})->Args({128, 0});

void BM_LayerForwardGqa(benchmark::State& state) {
  // 4 query heads over `kv` kv heads: smaller K/V projections.
  const ModelConfig cfg = bench_cfg(128, state.range(0));
  TransformerLayerBlock block(cfg);
  Rng rng(3);
  std::vector<float> w(static_cast<std::size_t>(block.param_count()));
  block.init_params(w, rng);
  const Microbatch mb = bench_mb(cfg);
  const Tensor x = Tensor::randn({mb.rows(), cfg.dim}, rng);
  for (auto _ : state) {
    BlockCtx ctx;
    Tensor y = block.forward(std::span<const float>(w.data(), w.size()), mb,
                             x, ctx, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LayerForwardGqa)->Arg(4)->Arg(2)->Arg(1);

void BM_CrossEntropy(benchmark::State& state) {
  const std::int64_t vocab = state.range(0);
  ModelConfig cfg = bench_cfg(64);
  cfg.vocab_size = vocab;
  const Microbatch mb = bench_mb(cfg);
  Rng rng(4);
  const Tensor logits = Tensor::randn({mb.rows(), vocab}, rng);
  for (auto _ : state) {
    LossResult lr = cross_entropy_loss(logits, mb);
    benchmark::DoNotOptimize(lr.dlogits.data());
  }
  state.SetItemsProcessed(state.iterations() * mb.rows() * vocab);
}
BENCHMARK(BM_CrossEntropy)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace weipipe

BENCHMARK_MAIN();
