// google-benchmark microbenchmarks for the message-passing fabric and the
// wire packers — the substrate costs behind every trainer.
#include <benchmark/benchmark.h>

#include <thread>

#include "comm/collectives.hpp"
#include "comm/fabric.hpp"

namespace weipipe::comm {
namespace {

void BM_PackFp16(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> values(n, 1.5f);
  for (auto _ : state) {
    auto bytes = pack_floats(values, WirePrecision::Fp16);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          4);
}
BENCHMARK(BM_PackFp16)->Arg(1 << 10)->Arg(1 << 16);

void BM_PingPong(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Fabric fabric(2);
  std::vector<float> payload(n, 1.0f);
  std::vector<float> sink(n);
  for (auto _ : state) {
    std::thread peer([&] {
      Endpoint& ep = fabric.endpoint(1);
      std::vector<float> buf(n);
      ep.recv_floats(0, 1, buf, WirePrecision::Fp32);
      ep.send_floats(0, 2, buf, WirePrecision::Fp32);
    });
    Endpoint& ep = fabric.endpoint(0);
    ep.send_floats(1, 1, payload, WirePrecision::Fp32);
    ep.recv_floats(1, 2, sink, WirePrecision::Fp32);
    peer.join();
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          8);
}
BENCHMARK(BM_PingPong)->Arg(1 << 10)->Arg(1 << 16);

void BM_RingAllReduce(benchmark::State& state) {
  const int p = 4;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Fabric fabric(p);
    std::vector<std::thread> threads;
    for (int r = 0; r < p; ++r) {
      threads.emplace_back([&, r] {
        std::vector<float> buf(n, static_cast<float>(r));
        ring_all_reduce(fabric.endpoint(r),
                        std::span<float>(buf.data(), buf.size()),
                        WirePrecision::Fp32);
        benchmark::DoNotOptimize(buf.data());
      });
    }
    for (auto& t : threads) {
      t.join();
    }
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          4 * p);
}
BENCHMARK(BM_RingAllReduce)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace
}  // namespace weipipe::comm

BENCHMARK_MAIN();
