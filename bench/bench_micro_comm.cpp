// google-benchmark microbenchmarks for the message-passing fabric and the
// wire packers — the substrate costs behind every trainer. With
// --kernels_json=PATH the binary instead emits a machine-readable sweep of
// payload size x wire format (pack/unpack GB/s, SIMD vs scalar) x transport
// path (byte-copy vs zero-copy Buffer ping-pong), plus the lock-free ring
// counters the traffic generated — see kernels_json.hpp.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/fabric.hpp"
#include "comm/wire.hpp"
#include "kernels_json.hpp"

namespace weipipe::comm {
namespace {

void BM_PackFp16(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> values(n, 1.5f);
  for (auto _ : state) {
    auto bytes = pack_floats(values, WirePrecision::Fp16);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          4);
}
BENCHMARK(BM_PackFp16)->Arg(1 << 10)->Arg(1 << 16);

void BM_PingPong(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Fabric fabric(2);
  std::vector<float> payload(n, 1.0f);
  std::vector<float> sink(n);
  for (auto _ : state) {
    std::thread peer([&] {
      Endpoint& ep = fabric.endpoint(1);
      std::vector<float> buf(n);
      ep.recv_floats(0, 1, buf, WirePrecision::Fp32);
      ep.send_floats(0, 2, buf, WirePrecision::Fp32);
    });
    Endpoint& ep = fabric.endpoint(0);
    ep.send_floats(1, 1, payload, WirePrecision::Fp32);
    ep.recv_floats(1, 2, sink, WirePrecision::Fp32);
    peer.join();
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          8);
}
BENCHMARK(BM_PingPong)->Arg(1 << 10)->Arg(1 << 16);

void BM_RingAllReduce(benchmark::State& state) {
  const int p = 4;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Fabric fabric(p);
    std::vector<std::thread> threads;
    for (int r = 0; r < p; ++r) {
      threads.emplace_back([&, r] {
        std::vector<float> buf(n, static_cast<float>(r));
        ring_all_reduce(fabric.endpoint(r),
                        std::span<float>(buf.data(), buf.size()),
                        WirePrecision::Fp32);
        benchmark::DoNotOptimize(buf.data());
      });
    }
    for (auto& t : threads) {
      t.join();
    }
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          4 * p);
}
BENCHMARK(BM_RingAllReduce)->Arg(1 << 12)->Arg(1 << 16);

// ---- --kernels_json mode ----------------------------------------------------

// Deterministic mixed-magnitude input: exercises the full converter (normals,
// small values, sign flips) without the cost of a real RNG in the hot loop.
std::vector<float> wire_input(std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float base = static_cast<float>((i % 251)) - 125.0f;
    v[i] = base * (1.0f + static_cast<float>(i % 17) * 0.03125f);
  }
  return v;
}

struct WireRow {
  const char* name;  // pack_fp16 | unpack_bf16 | pack_int8 | ...
  const char* impl;  // simd | scalar
  std::size_t n;     // fp32 elements
  double gbps;       // fp32-side bytes per second (n * 4 / t)
};

// Throughput of one packed<->fp32 conversion pass, measured against the
// fp32-side byte count (the tensor being shipped), not the wire bytes.
template <typename F>
double wire_gbps(std::size_t n, int reps, F&& fn) {
  fn();  // warm
  const double secs = bench::best_seconds(reps, fn);
  return static_cast<double>(n) * 4.0 / secs / 1e9;
}

void append_wire_rows(std::vector<WireRow>& rows, std::size_t n, int reps) {
  const std::vector<float> src = wire_input(n);
  std::vector<std::uint16_t> half(n);
  std::vector<float> out(n);
  const bool simd = wire_detail::simd_available();

  if (simd) {
    rows.push_back({"pack_fp16", "simd", n, wire_gbps(n, reps, [&] {
                      wire_detail::pack_f16_simd(src.data(), n, half.data());
                    })});
    rows.push_back({"unpack_fp16", "simd", n, wire_gbps(n, reps, [&] {
                      wire_detail::unpack_f16_simd(half.data(), n,
                                                   out.data());
                    })});
    rows.push_back({"pack_bf16", "simd", n, wire_gbps(n, reps, [&] {
                      wire_detail::pack_bf16_simd(src.data(), n, half.data());
                    })});
    rows.push_back({"unpack_bf16", "simd", n, wire_gbps(n, reps, [&] {
                      wire_detail::unpack_bf16_simd(half.data(), n,
                                                    out.data());
                    })});
  }
  rows.push_back({"pack_fp16", "scalar", n, wire_gbps(n, reps, [&] {
                    wire_detail::pack_f16_scalar(src.data(), n, half.data());
                  })});
  rows.push_back({"unpack_fp16", "scalar", n, wire_gbps(n, reps, [&] {
                    wire_detail::unpack_f16_scalar(half.data(), n,
                                                   out.data());
                  })});
  rows.push_back({"pack_bf16", "scalar", n, wire_gbps(n, reps, [&] {
                    wire_detail::pack_bf16_scalar(src.data(), n, half.data());
                  })});
  rows.push_back({"unpack_bf16", "scalar", n, wire_gbps(n, reps, [&] {
                    wire_detail::unpack_bf16_scalar(half.data(), n,
                                                    out.data());
                  })});

  std::vector<std::uint8_t> q(packed_size(n, WirePrecision::Int8));
  rows.push_back({"pack_int8", "scalar", n, wire_gbps(n, reps, [&] {
                    wire_detail::pack_int8(src.data(), n, q.data());
                  })});
  rows.push_back({"unpack_int8", "scalar", n, wire_gbps(n, reps, [&] {
                    wire_detail::unpack_int8(q.data(), n, out.data());
                  })});
}

struct TransportRow {
  const char* path;   // copy | zerocopy
  std::size_t bytes;  // payload bytes per message
  double ns_per_hop;
  double gbps;
};

// One fabric per row so the ring counters attached to the JSON reflect the
// whole sweep. `hops` round trips per timed rep amortize thread start-up.
TransportRow ping_pong_row(Fabric& fabric, const char* path, std::size_t bytes,
                           bool zerocopy, int reps, int hops) {
  const std::vector<std::uint8_t> payload(bytes, 0x5A);
  auto run = [&] {
    std::thread peer([&] {
      Endpoint& ep = fabric.endpoint(1);
      for (int h = 0; h < hops; ++h) {
        if (zerocopy) {
          Buffer b = ep.recv_buffer(0, 1);
          ep.send(0, 2, std::move(b));  // relay the same storage back
        } else {
          std::vector<std::uint8_t> b = ep.recv(0, 1);
          ep.send(0, 2, b);  // fresh copy each direction
        }
      }
    });
    Endpoint& ep = fabric.endpoint(0);
    for (int h = 0; h < hops; ++h) {
      if (zerocopy) {
        Buffer b = Buffer::allocate(bytes);
        std::memcpy(b.mutable_data(), payload.data(), bytes);
        ep.send(1, 1, std::move(b));
        (void)ep.recv_buffer(1, 2);
      } else {
        ep.send(1, 1, payload);
        (void)ep.recv(1, 2);
      }
    }
    peer.join();
  };
  run();  // warm
  const double secs = bench::best_seconds(reps, run);
  const double per_hop = secs / (2.0 * hops);
  return {path, bytes, per_hop * 1e9,
          static_cast<double>(bytes) / per_hop / 1e9};
}

int write_kernels_json(const std::string& path, bool smoke) {
  const int reps = smoke ? 3 : 9;
  const std::vector<std::size_t> wire_sizes =
      smoke ? std::vector<std::size_t>{1u << 12}
            : std::vector<std::size_t>{1u << 10, 1u << 14, 1u << 18};
  std::vector<WireRow> wire_rows;
  for (std::size_t n : wire_sizes) {
    append_wire_rows(wire_rows, n, reps);
  }

  Fabric fabric(2);
  const int hops = smoke ? 64 : 256;
  const std::vector<std::size_t> payload_sizes =
      smoke ? std::vector<std::size_t>{1u << 12}
            : std::vector<std::size_t>{1u << 12, 1u << 16, 1u << 20};
  std::vector<TransportRow> transport_rows;
  for (std::size_t bytes : payload_sizes) {
    transport_rows.push_back(
        ping_pong_row(fabric, "copy", bytes, false, reps, hops));
    transport_rows.push_back(
        ping_pong_row(fabric, "zerocopy", bytes, true, reps, hops));
  }
  const RingStats ring = fabric.ring_stats();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_micro_comm\",\n");
  std::fprintf(f, "  \"simd\": \"%s\",\n  \"wire_simd\": %s,\n",
               bench::simd_label(),
               wire_detail::simd_available() ? "true" : "false");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < wire_rows.size(); ++i) {
    const WireRow& r = wire_rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"impl\": \"%s\", \"n\": %zu, "
                 "\"gbps\": %.3f}%s\n",
                 r.name, r.impl, r.n, r.gbps,
                 i + 1 < wire_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"transport\": [\n");
  for (std::size_t i = 0; i < transport_rows.size(); ++i) {
    const TransportRow& r = transport_rows[i];
    std::fprintf(f,
                 "    {\"path\": \"%s\", \"bytes\": %zu, "
                 "\"ns_per_hop\": %.1f, \"gbps\": %.3f}%s\n",
                 r.path, r.bytes, r.ns_per_hop, r.gbps,
                 i + 1 < transport_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"ring\": {\"spins\": %llu, \"parks\": %llu, "
               "\"notifies\": %llu, \"overflow\": %llu}\n}\n",
               static_cast<unsigned long long>(ring.spins),
               static_cast<unsigned long long>(ring.parks),
               static_cast<unsigned long long>(ring.notifies),
               static_cast<unsigned long long>(ring.overflow));
  std::fclose(f);
  std::printf("wrote %s (%zu wire rows, %zu transport rows)\n", path.c_str(),
              wire_rows.size(), transport_rows.size());
  return 0;
}

}  // namespace
}  // namespace weipipe::comm

int main(int argc, char** argv) {
  weipipe::bench::KernelsJsonArgs args =
      weipipe::bench::parse_kernels_json_args(argc, argv);
  if (!args.json_path.empty()) {
    return weipipe::comm::write_kernels_json(args.json_path, args.smoke);
  }
  int rest_argc = static_cast<int>(args.rest.size());
  benchmark::Initialize(&rest_argc, args.rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, args.rest.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
