// Figure 9 reproduction: large-scale strong scaling. 8 -> 32 GPUs, global
// batch fixed at 256 sequences, L=32, 8-GPU NVLink servers + Ethernet.
// Strategies in the paper's figure: 1F1B, FSDP, WeiPipe; WeiPipe reaches the
// highest total throughput at 32 GPUs.
#include <cstdio>
#include <map>

#include "bench_util.hpp"

using namespace weipipe;
using namespace weipipe::bench;

int main() {
  const std::int64_t G = 8;  // batch below counts microbatches
  const std::int64_t batch = 256;  // fixed microbatch count
  const sim::Strategy strategies[] = {sim::Strategy::k1F1B,
                                      sim::Strategy::kFSDP,
                                      sim::Strategy::kWeiPipeInterleave};
  const int gpus[] = {8, 16, 32};

  std::printf(
      "== Figure 9: large-scale strong scaling (batch fixed at 256 microbatches) ==\n");
  std::printf("%8s |", "GPUs");
  for (auto s : strategies) {
    std::printf(" %16s |", sim::to_string(s));
  }
  std::printf("   (total kilo-tok/s)\n");

  std::map<int, std::map<int, Cell>> grid;
  for (int p : gpus) {
    const std::int64_t n = batch;
    sim::ModelDims dims;
    dims.hidden = 2048;
    dims.seq = 16384;  // long-context regime (paper §6.1.5)
    dims.microbatch = G;
    dims.layers = 32;
    dims.heads = 32;
    // Scaling figures train synthetic data; a compact tokenizer keeps the
    // LM head from skewing stage balance at layer-per-rank granularity.
    dims.vocab = 4096;
    const sim::Topology topo = sim::Topology::nvlink_ethernet(p, 8);
    std::printf("%8d |", p);
    for (int i = 0; i < 3; ++i) {
      const Cell c = run_cell(strategies[i], dims, n, topo);
      grid[p][i] = c;
      std::printf(" %16.1f |", c.tokens_per_s_per_gpu * p / 1000.0);
    }
    std::printf("\n");
  }

  std::printf("\n== shape checks vs paper Figure 9 ==\n");
  auto total = [&](int p, int idx) {
    return grid[p][idx].tokens_per_s_per_gpu * p;
  };
  const double weipipe_su = total(32, 2) / total(8, 2);
  const double f1b_su = total(32, 0) / total(8, 0);
  const double fsdp_su = total(32, 1) / total(8, 1);
  char detail[160];
  std::snprintf(detail, sizeof(detail),
                "8->32 GPU speedup (ideal 4.0): WeiPipe %.2f vs 1F1B %.2f, "
                "FSDP %.2f",
                weipipe_su, f1b_su, fsdp_su);
  shape_check("weipipe-strong-scales-best",
              weipipe_su >= f1b_su && weipipe_su >= fsdp_su, detail);
  shape_check("weipipe-highest-total-at-32",
              total(32, 2) >= std::max(total(32, 0), total(32, 1)),
              "paper: WeiPipe best at 32 GPUs");
  return 0;
}
