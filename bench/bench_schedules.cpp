// Figures 1-4 reproduction: renders the schedule diagrams (WeiPipe-Naive,
// WeiPipe-Interleave, WZB1, WZB2) as ASCII timelines at P=4, plus bubble
// ratios for the whole strategy family under the paper's T_B = 2 T_F
// workload assumption.
#include <cstdio>

#include "sched/builders.hpp"
#include "sim/engine.hpp"
#include "trace/timeline.hpp"

using namespace weipipe;

namespace {

sched::StrategyCosts unit_costs(std::int64_t p) {
  sched::StrategyCosts c;
  for (std::int64_t i = 0; i < p; ++i) {
    c.fwd_seconds.push_back(1.0);
    c.bwd_seconds.push_back(2.0);  // T_B = 2 T_F (no recompute, Fig. 1-4)
    c.bwd_acts_seconds.push_back(1.0);
    c.bwd_weights_seconds.push_back(1.0);
    c.chunk_weight_bytes.push_back(1.0);
    c.act_mem_bytes.push_back(1.0);
  }
  c.act_bytes = 1.0;
  c.act_grad_bytes = 1.0;
  return c;
}

void show(const sched::Program& prog, const sim::Topology& topo) {
  const sim::SimResult res = sim::simulate(prog, topo, {.record_ops = true});
  std::printf("%s", trace::render_timeline(res, {.width = 96}).c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  const std::int64_t P = 4;
  const std::int64_t rounds = 3;  // 12 microbatches at P=4
  const sched::StrategyCosts costs = unit_costs(P);
  const sim::Topology ideal = sim::Topology::uniform(
      static_cast<int>(P), sim::Link{1e15, 0.0}, "ideal");

  std::printf("== Figure 1: WeiPipe-Naive (P=4) ==\n");
  show(sched::build_weipipe(WeiPipeSchedule(P, rounds, WeiPipeMode::kNaive),
                            costs),
       ideal);

  std::printf("== Figure 2: WeiPipe-Interleave (P=4) ==\n");
  show(sched::build_weipipe(
           WeiPipeSchedule(P, rounds, WeiPipeMode::kInterleave), costs),
       ideal);

  std::printf("== Figure 3: WeiPipe-zero-bubble 1 (WZB1, P=4) ==\n");
  show(sched::build_weipipe_zero_bubble(P, rounds, sched::WzbVariant::kWzb1,
                                        costs),
       ideal);

  std::printf("== Figure 4: WeiPipe-zero-bubble 2 (WZB2, P=4) ==\n");
  show(sched::build_weipipe_zero_bubble(P, rounds, sched::WzbVariant::kWzb2,
                                        costs),
       ideal);

  std::printf("== Reference schedules: GPipe / 1F1B / ZB1 / ZB2 (P=4) ==\n");
  show(sched::build_gpipe(P, rounds * P, costs), ideal);
  show(sched::build_1f1b(P, rounds * P, costs), ideal);
  show(sched::build_zero_bubble(P, rounds * P, sched::ZbVariant::kZb1, costs),
       ideal);
  show(sched::build_zero_bubble(P, rounds * P, sched::ZbVariant::kZb2, costs),
       ideal);

  // Bubble-ratio family summary at a steadier configuration.
  std::printf("== Bubble ratios (P=8, N=64, T_B = 2 T_F, ideal links) ==\n");
  const std::int64_t p8 = 8;
  const std::int64_t n = 64;
  const sched::StrategyCosts c8 = unit_costs(p8);
  const sim::Topology ideal8 =
      sim::Topology::uniform(static_cast<int>(p8), sim::Link{1e15, 0.0},
                             "ideal");
  struct Entry {
    const char* name;
    sched::Program prog;
  };
  const Entry entries[] = {
      {"gpipe", sched::build_gpipe(p8, n, c8)},
      {"1f1b", sched::build_1f1b(p8, n, c8)},
      {"zb1", sched::build_zero_bubble(p8, n, sched::ZbVariant::kZb1, c8)},
      {"zb2", sched::build_zero_bubble(p8, n, sched::ZbVariant::kZb2, c8)},
      {"weipipe-naive",
       sched::build_weipipe(WeiPipeSchedule(p8, n / p8, WeiPipeMode::kNaive),
                            c8)},
      {"weipipe-interleave",
       sched::build_weipipe(
           WeiPipeSchedule(p8, n / p8, WeiPipeMode::kInterleave), c8)},
      {"wzb1", sched::build_weipipe_zero_bubble(p8, n / p8,
                                                sched::WzbVariant::kWzb1, c8)},
      {"wzb2", sched::build_weipipe_zero_bubble(p8, n / p8,
                                                sched::WzbVariant::kWzb2, c8)},
  };
  for (const Entry& e : entries) {
    const sim::SimResult r = sim::simulate(e.prog, ideal8);
    std::printf("  %-20s bubble %5.1f%%  makespan %7.1f\n", e.name,
                r.bubble_ratio() * 100.0, r.makespan);
  }
  return 0;
}
