// Shared helpers for the table/figure reproduction benches: cell runner with
// the paper's per-strategy microbatch-size rule, table formatting, and
// side-by-side paper-vs-simulated printing.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace weipipe::bench {

struct Cell {
  bool oom = false;
  double tokens_per_s_per_gpu = 0.0;
  double mem_gb = 0.0;
  double bubble = 0.0;
  double wire_gb = 0.0;
};

// Paper footnote (Tables 2-4): ZB strategies use G=4 when S=4096 and G=1 for
// longer sequences, because their no-recompute activation footprint OOMs at
// the common G.
inline std::int64_t zb_microbatch(std::int64_t seq) {
  return seq == 4096 ? 4 : 1;
}

inline Cell run_cell(sim::Strategy strategy, sim::ModelDims dims,
                     std::int64_t num_microbatches,
                     const sim::Topology& topo) {
  if (strategy == sim::Strategy::kZB1 || strategy == sim::Strategy::kZB2) {
    dims.microbatch = zb_microbatch(dims.seq);
  }
  sim::ExperimentConfig cfg;
  cfg.dims = dims;
  cfg.num_microbatches = num_microbatches;
  cfg.strategy = strategy;
  const sim::ExperimentResult r = sim::run_experiment(cfg, topo);
  Cell c;
  c.oom = r.oom;
  c.tokens_per_s_per_gpu = r.tokens_per_second_per_gpu;
  c.mem_gb = r.peak_mem_bytes / 1e9;
  c.bubble = r.bubble_ratio;
  c.wire_gb = r.wire_bytes / 1e9;
  return c;
}

inline std::string cell_str(const Cell& c) {
  char buf[64];
  if (c.oom) {
    std::snprintf(buf, sizeof(buf), "OOM(%.0fG)", c.mem_gb);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f/%.0fG", c.tokens_per_s_per_gpu,
                  c.mem_gb);
  }
  return buf;
}

// Emits "name: PASS"/"name: FAIL (detail)" shape-check lines; the bench
// return code stays 0 (these are report lines, asserted hard in tests/).
inline bool shape_check(const char* name, bool ok, const std::string& detail) {
  std::printf("  shape[%s]: %s%s%s\n", name, ok ? "PASS" : "FAIL",
              detail.empty() ? "" : " — ", detail.c_str());
  return ok;
}

}  // namespace weipipe::bench
