// Shared support for the machine-readable kernel-benchmark mode of the micro
// benches: flag parsing (--kernels_json=PATH, --smoke), best-of-N timing,
// and the SIMD-width label baked into the binary. With --kernels_json the
// binary skips google-benchmark and writes one JSON document (consumed by CI
// as an artifact and by artifacts/BENCH_kernels.json locally); without it,
// the usual google-benchmark CLI runs.
#pragma once

#include <chrono>
#include <string>
#include <vector>

namespace weipipe::bench {

struct KernelsJsonArgs {
  std::string json_path;  // empty = run google-benchmark instead
  bool smoke = false;     // tiny shapes / few reps, for CI smoke steps
  std::vector<char*> rest;  // argv[0] + flags for google-benchmark
};

inline KernelsJsonArgs parse_kernels_json_args(int argc, char** argv) {
  KernelsJsonArgs out;
  out.rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--kernels_json=", 0) == 0) {
      out.json_path = arg.substr(15);
    } else if (arg == "--smoke") {
      out.smoke = true;
    } else {
      out.rest.push_back(argv[i]);
    }
  }
  return out;
}

// Wall-clock best-of-reps: minimum filters scheduler noise on shared CI
// machines better than the mean.
template <typename F>
double best_seconds(int reps, F&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

// The micro-kernel vector width this binary was compiled for (mirrors the
// ISA selection in tensor/gemm.cpp).
inline const char* simd_label() {
#if defined(__AVX512F__)
  return "avx512";
#elif defined(__AVX__)
  return "avx";
#elif defined(__SSE2__) || defined(__x86_64__)
  return "sse2";
#else
  return "scalar";
#endif
}

}  // namespace weipipe::bench
