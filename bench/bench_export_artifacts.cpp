// Writes every reproduced table/figure as machine-readable artifacts:
//   artifacts/table{2,3,4}.csv        throughput/memory grids
//   artifacts/fig{6,7,8,9}.csv        scaling series
//   artifacts/fig{1,2,3,4}.svg        schedule diagrams
//   artifacts/fig{1,2,3,4}.csv        schedule op traces
// Run from the repo root (or pass an output directory as argv[1]).
#include <array>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sched/builders.hpp"
#include "trace/export.hpp"

using namespace weipipe;
using namespace weipipe::bench;

namespace {

std::vector<trace::ExperimentRow> run_grid(
    const std::vector<std::array<std::int64_t, 3>>& hsg, std::int64_t layers,
    const sim::Topology& topo, std::int64_t n) {
  std::vector<trace::ExperimentRow> rows;
  for (const auto& [h, s, g] : hsg) {
    for (auto strat :
         {sim::Strategy::k1F1B, sim::Strategy::kZB1, sim::Strategy::kZB2,
          sim::Strategy::kFSDP, sim::Strategy::kWeiPipeInterleave}) {
      sim::ModelDims dims;
      dims.hidden = h;
      dims.seq = s;
      dims.microbatch = g;
      dims.layers = layers;
      sim::ExperimentConfig cfg;
      cfg.dims = dims;
      if (strat == sim::Strategy::kZB1 || strat == sim::Strategy::kZB2) {
        cfg.dims.microbatch = zb_microbatch(s);
      }
      cfg.num_microbatches = n;
      cfg.strategy = strat;
      char label[64];
      std::snprintf(label, sizeof(label), "H%lld-S%lld-G%lld",
                    static_cast<long long>(h), static_cast<long long>(s),
                    static_cast<long long>(g));
      rows.push_back({label, sim::run_experiment(cfg, topo)});
    }
  }
  return rows;
}

void export_schedule_figure(const std::string& dir, int fignum,
                            const sched::Program& prog) {
  const sim::Topology ideal =
      sim::Topology::uniform(prog.num_ranks(), sim::Link{1e15, 0.0}, "ideal");
  const sim::SimResult res = sim::simulate(prog, ideal, {.record_ops = true});
  trace::write_file(dir + "/fig" + std::to_string(fignum) + ".svg",
                    trace::records_to_svg(res));
  trace::write_file(dir + "/fig" + std::to_string(fignum) + ".csv",
                    trace::records_to_csv(res));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "artifacts";
  std::filesystem::create_directories(dir);

  const std::vector<std::array<std::int64_t, 3>> grid = {
      {1024, 4096, 16}, {1024, 8192, 8}, {1024, 16384, 4},
      {2048, 4096, 16}, {2048, 8192, 8}, {2048, 16384, 4},
      {4096, 4096, 16}, {4096, 8192, 8}, {4096, 16384, 4}};

  std::printf("exporting tables...\n");
  trace::write_file(dir + "/table2.csv",
                    trace::experiments_to_csv(run_grid(
                        grid, 32, sim::Topology::nvlink(16, 8), 256)));
  trace::write_file(
      dir + "/table3.csv",
      trace::experiments_to_csv(run_grid(
          grid, 32, sim::Topology::pcie_ethernet(16, 4), 256)));
  trace::write_file(dir + "/table4.csv",
                    trace::experiments_to_csv(run_grid(
                        grid, 16, sim::Topology::nvlink(8, 8), 128)));

  std::printf("exporting scaling figures...\n");
  for (const auto& [fig, gpus_list, per_node, layers, weak] :
       std::vector<std::tuple<int, std::vector<int>, int, std::int64_t,
                              bool>>{{6, {4, 8, 16}, 4, 16, true},
                                     {7, {8, 16, 32}, 8, 32, true},
                                     {8, {4, 8, 16}, 4, 16, false},
                                     {9, {8, 16, 32}, 8, 32, false}}) {
    std::vector<trace::ExperimentRow> rows;
    for (int p : gpus_list) {
      sim::ModelDims dims;
      dims.hidden = 2048;
      dims.seq = weak ? 8192 : 16384;
      dims.microbatch = 8;
      dims.layers = layers;
      dims.vocab = 4096;
      for (auto strat : {sim::Strategy::k1F1B, sim::Strategy::kFSDP,
                         sim::Strategy::kWeiPipeInterleave}) {
        sim::ExperimentConfig cfg;
        cfg.dims = dims;
        cfg.num_microbatches =
            weak ? 16 * p : (fig == 8 ? 128 : 256);
        cfg.strategy = strat;
        rows.push_back({"gpus" + std::to_string(p),
                        sim::run_experiment(
                            cfg, sim::Topology::nvlink_ethernet(p, per_node))});
      }
    }
    trace::write_file(dir + "/fig" + std::to_string(fig) + ".csv",
                      trace::experiments_to_csv(rows));
    trace::write_file(dir + "/fig" + std::to_string(fig) + ".svg",
                      trace::experiments_to_svg(
                          rows, "Figure " + std::to_string(fig)));
  }

  std::printf("exporting schedule diagrams (figures 1-4)...\n");
  sched::StrategyCosts costs;
  for (int i = 0; i < 4; ++i) {
    costs.fwd_seconds.push_back(1.0);
    costs.bwd_seconds.push_back(2.0);
    costs.bwd_acts_seconds.push_back(1.0);
    costs.bwd_weights_seconds.push_back(1.0);
    costs.chunk_weight_bytes.push_back(1.0);
    costs.act_mem_bytes.push_back(1.0);
  }
  costs.act_bytes = 1.0;
  costs.act_grad_bytes = 1.0;
  export_schedule_figure(
      dir, 1,
      sched::build_weipipe(WeiPipeSchedule(4, 3, WeiPipeMode::kNaive), costs));
  export_schedule_figure(
      dir, 2,
      sched::build_weipipe(WeiPipeSchedule(4, 3, WeiPipeMode::kInterleave),
                           costs));
  export_schedule_figure(dir, 3,
                         sched::build_weipipe_zero_bubble(
                             4, 3, sched::WzbVariant::kWzb1, costs));
  export_schedule_figure(dir, 4,
                         sched::build_weipipe_zero_bubble(
                             4, 3, sched::WzbVariant::kWzb2, costs));

  std::printf("artifacts written to %s/\n", dir.c_str());
  return 0;
}
