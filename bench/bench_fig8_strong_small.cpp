// Figure 8 reproduction: small-scale strong scaling. 4 -> 16 GPUs, global
// batch fixed at 128 sequences, L=16, 4-GPU NVLink servers + Ethernet.
// The paper's claim: WeiPipe's *total* throughput grows closest to linearly.
#include <cstdio>
#include <map>

#include "bench_util.hpp"

using namespace weipipe;
using namespace weipipe::bench;

int main() {
  const std::int64_t G = 8;  // batch below counts microbatches
  const std::int64_t batch = 128;  // fixed microbatch count
  const sim::Strategy strategies[] = {
      sim::Strategy::k1F1B, sim::Strategy::kZB1, sim::Strategy::kZB2,
      sim::Strategy::kFSDP, sim::Strategy::kWeiPipeInterleave};
  const int gpus[] = {4, 8, 16};

  std::printf(
      "== Figure 8: small-scale strong scaling (batch fixed at 128 microbatches) ==\n");
  std::printf("%8s |", "GPUs");
  for (auto s : strategies) {
    std::printf(" %16s |", sim::to_string(s));
  }
  std::printf("   (total kilo-tok/s)\n");

  std::map<int, std::map<int, Cell>> grid;
  for (int p : gpus) {
    const std::int64_t n = batch;
    sim::ModelDims dims;
    dims.hidden = 2048;
    dims.seq = 16384;  // long-context regime (paper §6.1.5)
    dims.microbatch = G;
    dims.layers = 16;
    dims.heads = 32;
    // Scaling figures train synthetic data; a compact tokenizer keeps the
    // LM head from skewing stage balance at layer-per-rank granularity.
    dims.vocab = 4096;
    const sim::Topology topo = sim::Topology::nvlink_ethernet(p, 4);
    std::printf("%8d |", p);
    for (int i = 0; i < 5; ++i) {
      const Cell c = run_cell(strategies[i], dims, n, topo);
      grid[p][i] = c;
      if (c.oom) {
        std::printf(" %16s |", "OOM");
      } else {
        std::printf(" %16.1f |", c.tokens_per_s_per_gpu * p / 1000.0);
      }
    }
    std::printf("\n");
  }

  std::printf("\n== shape checks vs paper Figure 8 ==\n");
  auto speedup = [&](int idx) {
    const Cell& lo = grid[4][idx];
    const Cell& hi = grid[16][idx];
    if (lo.oom || hi.oom) {
      return 0.0;
    }
    return hi.tokens_per_s_per_gpu * 16 / (lo.tokens_per_s_per_gpu * 4);
  };
  const double weipipe_su = speedup(4);
  const double f1b_su = speedup(0);
  const double fsdp_su = speedup(3);
  char detail[160];
  std::snprintf(detail, sizeof(detail),
                "4->16 GPU speedup (ideal 4.0): WeiPipe %.2f vs 1F1B %.2f, "
                "FSDP %.2f",
                weipipe_su, f1b_su, fsdp_su);
  shape_check("weipipe-strong-scales-best",
              weipipe_su >= f1b_su && weipipe_su >= fsdp_su, detail);
  return 0;
}
