// Table 4 reproduction: 8 GPUs on a single NVLink node, L=16 — the regime
// the paper uses to show WeiPipe's advantage can *reverse* when communication
// is cheap: FSDP (and for some cells ZB) overtake WeiPipe.
#include <cstdio>

#include "bench_util.hpp"

using namespace weipipe;
using namespace weipipe::bench;

namespace {

struct PaperRow {
  std::int64_t h, s, g;
  // Paper values in kilo-tokens/s/GPU where legible; -2 = cell garbled in
  // our source text, -1 = OOM.
  double tp[5];
};

const PaperRow kPaper[] = {
    {1024, 4096, 16, {32.0, 45.8, 46.5, 37.9, 31.3}},
    {2048, 16384, 4, {15.9, 22.0, 22.1, 17.8, 16.9}},
    {4096, 4096, 16, {5.2, -1, -1, 6.0, 4.9}},
    {4096, 16384, 4, {3.7, -1, -1, 3.8, 3.6}},
};

const sim::Strategy kStrategies[] = {
    sim::Strategy::k1F1B, sim::Strategy::kZB1, sim::Strategy::kZB2,
    sim::Strategy::kFSDP, sim::Strategy::kWeiPipeInterleave};

}  // namespace

int main() {
  const int P = 8;
  const std::int64_t N = 16 * P;
  const sim::Topology topo = sim::Topology::nvlink(P, 8);  // one node

  std::printf("== Table 4: 8 GPUs, single NVLink node, L=16 ==\n");
  std::printf("%5s %6s %3s |", "H", "S", "G");
  for (auto s : kStrategies) {
    std::printf(" %22s |", sim::to_string(s));
  }
  std::printf("\n%s\n", std::string(140, '-').c_str());

  int fsdp_beats_weipipe = 0;
  int rows = 0;
  for (const PaperRow& row : kPaper) {
    sim::ModelDims dims;
    dims.hidden = row.h;
    dims.seq = row.s;
    dims.microbatch = row.g;
    dims.layers = 16;
    dims.heads = 32;
    std::printf("%5lld %6lld %3lld |", static_cast<long long>(row.h),
                static_cast<long long>(row.s), static_cast<long long>(row.g));
    Cell cells[5];
    for (int i = 0; i < 5; ++i) {
      cells[i] = run_cell(kStrategies[i], dims, N, topo);
      char paper[32];
      if (row.tp[i] == -1) {
        std::snprintf(paper, sizeof(paper), "OOM");
      } else {
        std::snprintf(paper, sizeof(paper), "%.1fk", row.tp[i]);
      }
      std::printf(" %10s (p:%7s) |", cell_str(cells[i]).c_str(), paper);
    }
    std::printf("\n");
    ++rows;
    if (!cells[3].oom && cells[3].tokens_per_s_per_gpu >
                             cells[4].tokens_per_s_per_gpu) {
      ++fsdp_beats_weipipe;
    }
  }

  std::printf("\n== shape checks vs paper Table 4 ==\n");
  char detail[128];
  std::snprintf(detail, sizeof(detail),
                "FSDP > WeiPipe in %d/%d rows (paper: conventional methods "
                "can win on cheap interconnects)",
                fsdp_beats_weipipe, rows);
  shape_check("advantage-reverses-on-pure-nvlink", fsdp_beats_weipipe >= rows - 1,
              detail);
  return 0;
}
