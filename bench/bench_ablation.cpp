// Ablations of the design decisions DESIGN.md §5 calls out, at paper scale
// through the calibrated simulator:
//   1. Interleave vs Naive across round counts (the §4.2.2 improvement)
//   2. Communication overlap (batch_isend_irecv prefetch) on/off
//   3. FSDP gather prefetch on/off
//   4. Ring granularity: workers per ring at fixed world size (hybrid DP)
//   5. Wire precision: fp16 vs fp32 circulation volume
#include <cstdio>

#include "bench_util.hpp"
#include "sim/cost_model.hpp"

using namespace weipipe;
using namespace weipipe::bench;

namespace {

sim::ModelDims paper_dims() {
  sim::ModelDims dims;
  dims.hidden = 2048;
  dims.seq = 8192;
  dims.microbatch = 8;
  dims.layers = 32;
  dims.heads = 32;
  return dims;
}

double tokens_per_s(const sched::Program& prog, const sim::Topology& topo,
                    double tokens) {
  const sim::SimResult res = sim::simulate(prog, topo);
  return tokens / res.makespan / topo.ranks();
}

}  // namespace

int main() {
  const int P = 16;
  const sim::ModelDims dims = paper_dims();
  const sim::GpuSpec gpu;
  const sim::CostModel cm(dims, gpu, {});
  const sched::StrategyCosts costs = cm.strategy_costs(P);
  const sim::Topology topo = sim::Topology::nvlink(P, 8);
  const double tokens_per_round =
      static_cast<double>(P) * dims.tokens_per_microbatch();

  std::printf("== Ablation 1: interleave vs naive across rounds ==\n");
  std::printf("(paper §4.2.2: interleaving halves the naive bubble+turns)\n");
  std::printf("%8s | %14s | %14s | %8s\n", "rounds", "naive tok/s", "intl tok/s",
              "speedup");
  for (std::int64_t r : {1LL, 2LL, 4LL, 8LL, 16LL}) {
    const double tokens = static_cast<double>(r) * tokens_per_round;
    const double naive = tokens_per_s(
        sched::build_weipipe(WeiPipeSchedule(P, r, WeiPipeMode::kNaive),
                             costs),
        topo, tokens);
    const double intl = tokens_per_s(
        sched::build_weipipe(WeiPipeSchedule(P, r, WeiPipeMode::kInterleave),
                             costs),
        topo, tokens);
    std::printf("%8lld | %14.0f | %14.0f | %7.2fx\n",
                static_cast<long long>(r), naive, intl, intl / naive);
  }

  std::printf("\n== Ablation 2: WeiPipe communication overlap ==\n");
  const std::int64_t r = 16;
  const double tokens = static_cast<double>(r) * tokens_per_round;
  const WeiPipeSchedule sched(P, r, WeiPipeMode::kInterleave);
  const double with = tokens_per_s(
      sched::build_weipipe(sched, costs, /*prefetch=*/true), topo, tokens);
  const double without = tokens_per_s(
      sched::build_weipipe(sched, costs, /*prefetch=*/false), topo, tokens);
  std::printf("  prefetch on : %10.0f tok/s/GPU\n", with);
  std::printf("  prefetch off: %10.0f tok/s/GPU  (%.0f%% slower)\n", without,
              (1.0 - without / with) * 100.0);
  shape_check("overlap-pays", with > without * 1.02, "paper §5");

  std::printf("\n== Ablation 3: FSDP gather prefetch ==\n");
  const auto coll = cm.fsdp_collective_costs(P, topo);
  const double fsdp_block = tokens_per_s(
      sched::build_fsdp(P, r, costs, coll, /*overlap_prefetch=*/false), topo,
      tokens);
  const double fsdp_pref = tokens_per_s(
      sched::build_fsdp(P, r, costs, coll, /*overlap_prefetch=*/true), topo,
      tokens);
  std::printf("  blocking gathers : %10.0f tok/s/GPU (paper's baseline)\n",
              fsdp_block);
  std::printf("  prefetched       : %10.0f tok/s/GPU\n", fsdp_pref);
  shape_check("fsdp-prefetch-helps", fsdp_pref >= fsdp_block, "");

  std::printf("\n== Ablation 4: wire precision (circulated volume) ==\n");
  {
    const sim::SimResult fp16 = sim::simulate(
        sched::build_weipipe(sched, costs), topo);
    sched::StrategyCosts fp32 = costs;
    for (double& b : fp32.chunk_weight_bytes) {
      b *= 2.0;  // fp32 circulation doubles every chunk message
    }
    const sim::SimResult wide = sim::simulate(
        sched::build_weipipe(sched, fp32), topo);
    std::printf("  fp16 circulation: %8.1f GB wire, makespan %.1f s\n",
                fp16.p2p_bytes / 1e9, fp16.makespan);
    std::printf("  fp32 circulation: %8.1f GB wire, makespan %.1f s\n",
                wide.p2p_bytes / 1e9, wide.makespan);
    shape_check("fp16-halves-wire",
                fp16.p2p_bytes < 0.51 * wide.p2p_bytes, "");
  }

  std::printf(
      "\n== Ablation 5: ring granularity at fixed world size (32 GPUs) ==\n");
  std::printf("(hybrid WeiPipe x DP: fewer chunks per ring = fatter chunks, "
              "fewer turns, plus a cross-replica reduce)\n");
  std::printf("%12s | %14s | %10s\n", "rings x size", "tok/s/GPU", "bubble");
  for (int ring : {8, 16, 32}) {
    const int dp = 32 / ring;
    const sim::CostModel cm_ring(dims, gpu, {});
    const sched::StrategyCosts rc = cm_ring.strategy_costs(ring);
    const sim::Topology ring_topo = sim::Topology::nvlink(ring, 8);
    const WeiPipeSchedule rs(ring, 16, WeiPipeMode::kInterleave);
    const sim::SimResult res =
        sim::simulate(sched::build_weipipe(rs, rc), ring_topo);
    const double tok = 16.0 * ring * dims.tokens_per_microbatch() /
                       res.makespan / ring;
    std::printf("%6dx%-5d | %14.0f | %9.1f%%\n", dp, ring, tok,
                res.bubble_ratio() * 100.0);
  }
  std::printf("(per-ring numbers; the DP reduce adds one chunk-sized hop per "
              "replica per iteration)\n");
  return 0;
}
