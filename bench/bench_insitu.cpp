// In-situ benchmark: the *real* multithreaded trainers (actual transformer
// math over the message-passing fabric), strategies side by side, on fast
// and software-throttled links. Also runs the design ablations DESIGN.md §5
// calls out: naive vs interleave, async prefetch on/off, and fp16 vs fp32
// circulation (wire bytes).
//
// Numbers here are CPU-thread wall times for a tiny Llama — meaningful as
// *relative* comparisons, not absolute GPU throughput.
#include <cstdio>
#include <memory>

#include "baselines/fsdp_trainer.hpp"
#include "baselines/pipeline_trainer.hpp"
#include "core/sequential_trainer.hpp"
#include "core/weipipe_trainer.hpp"
#include "sim/fabric_bridge.hpp"

using namespace weipipe;

namespace {

TrainConfig bench_config() {
  TrainConfig cfg;
  cfg.model.vocab_size = 128;
  cfg.model.dim = 64;
  cfg.model.n_layers = 8;
  cfg.model.n_heads = 4;
  cfg.model.seq_len = 64;
  cfg.model.recompute = true;
  cfg.num_microbatches = 8;
  cfg.microbatch_size = 4;
  cfg.seq_len = 64;
  cfg.seed = 7;
  return cfg;
}

struct RunResult {
  double tokens_per_sec = 0.0;
  double wire_mb = 0.0;
  float loss = 0.0f;
};

RunResult run(Trainer& trainer, const TrainConfig& cfg, int iters) {
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  RunResult out;
  double seconds = 0.0;
  std::uint64_t bytes = 0;
  for (int it = 0; it < iters; ++it) {
    const IterationResult r = trainer.train_iteration(data, it);
    seconds += r.wall_seconds;
    bytes += r.wire_bytes;
    out.loss = r.mean_loss;
  }
  const double tokens = static_cast<double>(iters) * cfg.num_microbatches *
                        cfg.microbatch_size * cfg.seq_len;
  out.tokens_per_sec = tokens / seconds;
  out.wire_mb = static_cast<double>(bytes) / 1e6;
  return out;
}

void report(const char* name, const RunResult& r) {
  std::printf("  %-28s %10.0f tok/s   wire %8.2f MB   loss %.4f\n", name,
              r.tokens_per_sec, r.wire_mb, r.loss);
}

}  // namespace

int main() {
  const TrainConfig cfg = bench_config();
  const int iters = 3;
  const std::int64_t P = 4;

  std::printf("== In-situ strategies (P=%lld threads, fast links) ==\n",
              static_cast<long long>(P));
  {
    SequentialTrainer t(cfg);
    report("sequential", run(t, cfg, iters));
  }
  {
    WeiPipeTrainer t(cfg, P, {.mode = WeiPipeMode::kInterleave});
    report("weipipe-interleave", run(t, cfg, iters));
  }
  {
    WeiPipeTrainer t(cfg, P, {.mode = WeiPipeMode::kNaive});
    report("weipipe-naive", run(t, cfg, iters));
  }
  {
    PipelineTrainer t(cfg, P, {.mode = PipelineMode::k1F1B});
    report("1f1b", run(t, cfg, iters));
  }
  {
    PipelineTrainer t(cfg, P, {.mode = PipelineMode::kGPipe});
    report("gpipe", run(t, cfg, iters));
  }
  {
    FsdpTrainer t(cfg, P);
    report("fsdp", run(t, cfg, iters));
  }

  std::printf(
      "\n== Throttled links (software-emulated ~80 MB/s, 0.2 ms latency) ==\n");
  const comm::LinkModel slow = comm::uniform_link(80e6, 2e-4);
  {
    WeiPipeTrainer t(cfg, P, {.link_model = slow});
    report("weipipe-interleave", run(t, cfg, iters));
  }
  {
    PipelineTrainer t(cfg, P, {.link_model = slow});
    report("1f1b", run(t, cfg, iters));
  }
  {
    FsdpTrainer t(cfg, P, {.link_model = slow});
    report("fsdp", run(t, cfg, iters));
  }

  std::printf(
      "\n== Emulated cluster topology (PCIe nodes + Ethernet, scaled 2000x "
      "down) ==\n");
  {
    const comm::LinkModel cluster = sim::link_model_from_topology(
        sim::Topology::pcie_ethernet(4, 2), /*time_scale=*/2000.0);
    WeiPipeTrainer wp(cfg, P, {.link_model = cluster});
    report("weipipe-interleave", run(wp, cfg, iters));
    PipelineTrainer f1b(cfg, P, {.link_model = cluster});
    report("1f1b", run(f1b, cfg, iters));
    FsdpTrainer fsdp(cfg, P, {.link_model = cluster});
    report("fsdp", run(fsdp, cfg, iters));
    std::printf(
        "  (note: at this miniature scale G*S/(12H) = %.2f << 1 — the\n"
        "   *activation-passing* regime — so 1F1B rightly wins here; the\n"
        "   paper's long-context regime flips the ratio above 1, see\n"
        "   bench_theory and examples/long_context_training)\n",
        static_cast<double>(cfg.microbatch_size) * cfg.seq_len /
            (12.0 * cfg.model.dim));
  }

  std::printf(
      "\n== Same emulated cluster, long-context regime (G*S/(12H) > 1) ==\n");
  {
    TrainConfig lc;
    lc.model.vocab_size = 64;
    lc.model.dim = 16;
    lc.model.n_layers = 4;
    lc.model.n_heads = 2;
    lc.model.seq_len = 512;
    lc.model.recompute = true;
    lc.num_microbatches = 16;  // R = 4 rounds: amortized fill/drain
    lc.microbatch_size = 1;
    lc.seq_len = 512;
    lc.seed = 7;
    lc.precision = PrecisionConfig::paper();  // fp16 wires, as deployed
    std::printf("  H=%lld S=%lld G=%lld: G*S/(12H) = %.2f\n",
                static_cast<long long>(lc.model.dim),
                static_cast<long long>(lc.seq_len),
                static_cast<long long>(lc.microbatch_size),
                static_cast<double>(lc.microbatch_size) * lc.seq_len /
                    (12.0 * lc.model.dim));
    const comm::LinkModel cluster = sim::link_model_from_topology(
        sim::Topology::pcie_ethernet(4, 2), /*time_scale=*/30000.0);
    WeiPipeTrainer wp(lc, P, {.link_model = cluster});
    report("weipipe-interleave", run(wp, lc, 2));
    PipelineTrainer f1b(lc, P, {.link_model = cluster});
    report("1f1b", run(f1b, lc, 2));
  }

  std::printf("\n== Ablation: communication overlap (throttled links) ==\n");
  {
    WeiPipeTrainer t(cfg, P, {.async_prefetch = true, .link_model = slow});
    report("prefetch on", run(t, cfg, iters));
  }
  {
    WeiPipeTrainer t(cfg, P, {.async_prefetch = false, .link_model = slow});
    report("prefetch off", run(t, cfg, iters));
  }

  std::printf("\n== Ablation: circulation precision (wire bytes) ==\n");
  {
    WeiPipeTrainer t(cfg, P);
    report("fp32 circulation", run(t, cfg, iters));
  }
  {
    TrainConfig half = cfg;
    half.precision = PrecisionConfig::paper();
    WeiPipeTrainer t(half, P);
    report("fp16/bf16 circulation", run(t, cfg, iters));
  }
  return 0;
}
