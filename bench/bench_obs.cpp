// Microbenchmarks for the observability layer's hot paths.
//
// The contract (docs/OBSERVABILITY.md): compiled-in-but-disabled tracing is
// one relaxed atomic load per would-be span — run BM_SpanScope_Disabled to
// check it stays in the ~1 ns range, which is what keeps instrumented
// trainers within the <5% bench_insitu overhead budget when no recorder is
// installed.
#include <benchmark/benchmark.h>

#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/recorder.hpp"

namespace weipipe {
namespace {

void BM_SpanScope_Disabled(benchmark::State& state) {
  // No recorder installed: construction is a relaxed load + branch.
  for (auto _ : state) {
    obs::SpanScope scope(obs::SpanKind::kForward, 1, 2);
    benchmark::DoNotOptimize(scope.armed());
  }
}
BENCHMARK(BM_SpanScope_Disabled);

void BM_SpanScope_Enabled(benchmark::State& state) {
  obs::Recorder recorder({.ring_capacity = 1 << 16});
  recorder.install();
  obs::RankScope rank_scope(0);
  std::size_t since_drain = 0;
  for (auto _ : state) {
    {
      obs::SpanScope scope(obs::SpanKind::kForward, 1, 2);
      benchmark::DoNotOptimize(scope.armed());
    }
    if (++since_drain == (1u << 15)) {  // keep the ring from overflowing
      state.PauseTiming();
      (void)recorder.drain();
      since_drain = 0;
      state.ResumeTiming();
    }
  }
  recorder.uninstall();
}
BENCHMARK(BM_SpanScope_Enabled);

void BM_Drain_64kSpans(benchmark::State& state) {
  obs::Recorder recorder({.ring_capacity = 1 << 16});
  recorder.install();
  obs::RankScope rank_scope(0);
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < (1 << 16); ++i) {
      obs::SpanScope scope(obs::SpanKind::kForward, i, 0);
    }
    state.ResumeTiming();
    std::vector<obs::Span> spans = recorder.drain();
    benchmark::DoNotOptimize(spans.data());
  }
  recorder.uninstall();
}
BENCHMARK(BM_Drain_64kSpans)->Unit(benchmark::kMillisecond);

void BM_ChromeTraceExport_10kSpans(benchmark::State& state) {
  std::vector<obs::Span> spans;
  spans.reserve(10'000);
  for (int i = 0; i < 10'000; ++i) {
    obs::Span s;
    s.kind = (i % 3 == 0) ? obs::SpanKind::kSendTransfer
                          : obs::SpanKind::kForward;
    s.rank = i % 8;
    s.start_ns = i * 1'000;
    s.end_ns = i * 1'000 + 800;
    s.microbatch = i;
    s.chunk = i % 8;
    if (s.kind == obs::SpanKind::kSendTransfer) {
      s.peer = (i + 1) % 8;
      s.tag = 1;
      s.bytes = 4096;
      s.flow_id = i;
    }
    spans.push_back(s);
  }
  for (auto _ : state) {
    std::string json = obs::spans_to_chrome_trace(spans);
    benchmark::DoNotOptimize(json.data());
  }
}
BENCHMARK(BM_ChromeTraceExport_10kSpans)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weipipe

BENCHMARK_MAIN();
