// Microbenchmarks for the observability layer's hot paths.
//
// The contract (docs/OBSERVABILITY.md): compiled-in-but-disabled tracing is
// one relaxed atomic load per would-be span — run BM_SpanScope_Disabled to
// check it stays in the ~1 ns range, which is what keeps instrumented
// trainers within the <5% bench_insitu overhead budget when no recorder is
// installed.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/critpath.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timeseries.hpp"

namespace weipipe {
namespace {

void BM_SpanScope_Disabled(benchmark::State& state) {
  // No recorder installed: construction is a relaxed load + branch.
  for (auto _ : state) {
    obs::SpanScope scope(obs::SpanKind::kForward, 1, 2);
    benchmark::DoNotOptimize(scope.armed());
  }
}
BENCHMARK(BM_SpanScope_Disabled);

void BM_SpanScope_Enabled(benchmark::State& state) {
  obs::Recorder recorder({.ring_capacity = 1 << 16});
  recorder.install();
  obs::RankScope rank_scope(0);
  std::size_t since_drain = 0;
  for (auto _ : state) {
    {
      obs::SpanScope scope(obs::SpanKind::kForward, 1, 2);
      benchmark::DoNotOptimize(scope.armed());
    }
    if (++since_drain == (1u << 15)) {  // keep the ring from overflowing
      state.PauseTiming();
      (void)recorder.drain();
      since_drain = 0;
      state.ResumeTiming();
    }
  }
  recorder.uninstall();
}
BENCHMARK(BM_SpanScope_Enabled);

void BM_Drain_64kSpans(benchmark::State& state) {
  obs::Recorder recorder({.ring_capacity = 1 << 16});
  recorder.install();
  obs::RankScope rank_scope(0);
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < (1 << 16); ++i) {
      obs::SpanScope scope(obs::SpanKind::kForward, i, 0);
    }
    state.ResumeTiming();
    std::vector<obs::Span> spans = recorder.drain();
    benchmark::DoNotOptimize(spans.data());
  }
  recorder.uninstall();
}
BENCHMARK(BM_Drain_64kSpans)->Unit(benchmark::kMillisecond);

void BM_ChromeTraceExport_10kSpans(benchmark::State& state) {
  std::vector<obs::Span> spans;
  spans.reserve(10'000);
  for (int i = 0; i < 10'000; ++i) {
    obs::Span s;
    s.kind = (i % 3 == 0) ? obs::SpanKind::kSendTransfer
                          : obs::SpanKind::kForward;
    s.rank = i % 8;
    s.start_ns = i * 1'000;
    s.end_ns = i * 1'000 + 800;
    s.microbatch = i;
    s.chunk = i % 8;
    if (s.kind == obs::SpanKind::kSendTransfer) {
      s.peer = (i + 1) % 8;
      s.tag = 1;
      s.bytes = 4096;
      s.flow_id = i;
    }
    spans.push_back(s);
  }
  for (auto _ : state) {
    std::string json = obs::spans_to_chrome_trace(spans);
    benchmark::DoNotOptimize(json.data());
  }
}
BENCHMARK(BM_ChromeTraceExport_10kSpans)->Unit(benchmark::kMillisecond);

// One telemetry sampler tick over a realistically-sized registry: this is
// the recurring cost the --telemetry flag adds per sample period, and it
// must stay far below the step time for the <1% overhead budget.
void BM_TelemetryTick_200Series(benchmark::State& state) {
  obs::Registry registry;
  for (int i = 0; i < 150; ++i) {
    registry.counter("bench.counter." + std::to_string(i)).add(i);
  }
  for (int i = 0; i < 50; ++i) {
    registry.gauge("bench.gauge." + std::to_string(i)).set(i * 0.5);
  }
  obs::TimeseriesOptions options;
  options.watch_ledger = false;
  obs::TelemetrySampler sampler(options);
  sampler.watch_registry(&registry);
  for (auto _ : state) {
    sampler.sample_now();
  }
}
BENCHMARK(BM_TelemetryTick_200Series)->Unit(benchmark::kMicrosecond);

// Critical-path analysis of a synthetic 8-rank step with producer/consumer
// chains: the per-step cost `weipipe_cli anatomy` and profile reports pay.
void BM_AnalyzeStep_10kSpans(benchmark::State& state) {
  std::vector<obs::Span> spans;
  spans.reserve(10'000);
  std::int64_t flow = 0;
  for (int i = 0; i < 2'500; ++i) {
    const int rank = i % 8;
    const std::int64_t base = i * 1'000;
    obs::Span f;
    f.kind = obs::SpanKind::kForward;
    f.rank = rank;
    f.start_ns = base;
    f.end_ns = base + 600;
    spans.push_back(f);
    obs::Span send;
    send.kind = obs::SpanKind::kSendTransfer;
    send.rank = rank;
    send.peer = (rank + 1) % 8;
    send.tag = 1;
    send.flow_id = flow;
    send.start_ns = base + 600;
    send.end_ns = base + 700;
    spans.push_back(send);
    obs::Span wait;
    wait.kind = obs::SpanKind::kRecvWait;
    wait.rank = (rank + 1) % 8;
    wait.peer = rank;
    wait.tag = 1;
    wait.flow_id = flow++;
    wait.start_ns = base + 300;
    wait.end_ns = base + 750;
    spans.push_back(wait);
    obs::Span b;
    b.kind = obs::SpanKind::kBackward;
    b.rank = (rank + 1) % 8;
    b.start_ns = base + 750;
    b.end_ns = base + 990;
    spans.push_back(b);
  }
  for (auto _ : state) {
    obs::StepAnatomy anatomy = obs::analyze_step(spans);
    benchmark::DoNotOptimize(anatomy.segments.data());
  }
}
BENCHMARK(BM_AnalyzeStep_10kSpans)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weipipe

BENCHMARK_MAIN();
