// Table 3 reproduction: throughput on 16 GPUs in the paper's PCIe + 10 Gb
// Ethernet environment (4-GPU PCIe nodes, Ethernet between nodes) — the
// communication-constrained setting where WeiPipe's advantage widens.
#include <cstdio>

#include "bench_util.hpp"

using namespace weipipe;
using namespace weipipe::bench;

namespace {

struct PaperRow {
  std::int64_t h, s, g;
  double tp[5];  // 1F1B, ZB1, ZB2, FSDP, WeiPipe (-1 = OOM)
};

// Transcribed from the paper's Table 3.
const PaperRow kPaper[] = {
    {1024, 4096, 16, {8193, 7708, 7952, 11545, 13847}},
    {1024, 16384, 4, {5394, 4583, 4630, 6764, 7551}},
    {2048, 4096, 16, {4030, 3701, -1, 4205, 5587}},
    {2048, 16384, 4, {2907, 2638, -1, 3150, 4151}},
    {4096, 4096, 16, {1530, -1, -1, 1186, 1402}},
    {4096, 16384, 4, {1232, -1, -1, 966, 1505}},
};

const sim::Strategy kStrategies[] = {
    sim::Strategy::k1F1B, sim::Strategy::kZB1, sim::Strategy::kZB2,
    sim::Strategy::kFSDP, sim::Strategy::kWeiPipeInterleave};

}  // namespace

int main() {
  const int P = 16;
  const std::int64_t N = 16 * P;
  const sim::Topology topo = sim::Topology::pcie_ethernet(P, 4);

  std::printf("== Table 3: 16 GPUs, PCIe within nodes + 10GbE between ==\n");
  std::printf("%5s %6s %3s |", "H", "S", "G");
  for (auto s : kStrategies) {
    std::printf(" %22s |", sim::to_string(s));
  }
  std::printf("\n%s\n", std::string(140, '-').c_str());

  int weipipe_wins = 0;
  int rows = 0;
  double sum_vs_fsdp = 0.0;
  int fsdp_rows = 0;
  for (const PaperRow& row : kPaper) {
    sim::ModelDims dims;
    dims.hidden = row.h;
    dims.seq = row.s;
    dims.microbatch = row.g;
    dims.layers = 32;
    dims.heads = 32;
    std::printf("%5lld %6lld %3lld |", static_cast<long long>(row.h),
                static_cast<long long>(row.s), static_cast<long long>(row.g));
    Cell cells[5];
    for (int i = 0; i < 5; ++i) {
      cells[i] = run_cell(kStrategies[i], dims, N, topo);
      char paper[32];
      if (row.tp[i] < 0) {
        std::snprintf(paper, sizeof(paper), "OOM");
      } else {
        std::snprintf(paper, sizeof(paper), "%.0f", row.tp[i]);
      }
      std::printf(" %10s (p:%7s) |", cell_str(cells[i]).c_str(), paper);
    }
    std::printf("\n");
    ++rows;
    double best_other = 0.0;
    for (int i = 0; i < 4; ++i) {
      if (!cells[i].oom) {
        best_other = std::max(best_other, cells[i].tokens_per_s_per_gpu);
      }
    }
    if (cells[4].tokens_per_s_per_gpu >= best_other * 0.97) {
      ++weipipe_wins;
    }
    if (!cells[3].oom) {
      sum_vs_fsdp +=
          cells[4].tokens_per_s_per_gpu / cells[3].tokens_per_s_per_gpu;
      ++fsdp_rows;
    }
  }

  std::printf("\n== shape checks vs paper Table 3 ==\n");
  char detail[128];
  std::snprintf(detail, sizeof(detail), "%d/%d rows (paper: 6/6)",
                weipipe_wins, rows);
  shape_check("weipipe-wins-communication-constrained", weipipe_wins >= rows - 1,
              detail);
  const double mean_vs_fsdp = sum_vs_fsdp / fsdp_rows;
  std::snprintf(detail, sizeof(detail),
                "mean WeiPipe/FSDP = %.2f (paper mean ~1.3; gaps widen vs "
                "Table 2)",
                mean_vs_fsdp);
  shape_check("gap-widens-on-slow-links", mean_vs_fsdp > 1.1, detail);
  return 0;
}
