// Figure 7 reproduction: large-scale weak scaling. 8 -> 32 GPUs (8 GPUs per
// NVLink server, Ethernet between servers), batch 128 -> 512 sequences,
// L=32. Strategies shown in the paper's figure: 1F1B, FSDP, WeiPipe.
#include <cstdio>
#include <map>

#include "bench_util.hpp"

using namespace weipipe;
using namespace weipipe::bench;

int main() {
  const std::int64_t G = 8;  // batch below counts microbatches
  const sim::Strategy strategies[] = {sim::Strategy::k1F1B,
                                      sim::Strategy::kFSDP,
                                      sim::Strategy::kWeiPipeInterleave};
  const int gpus[] = {8, 16, 32};

  std::printf(
      "== Figure 7: large-scale weak scaling (batch 128->512 microbatches, 8 GPU "
      "NVLink servers + Ethernet) ==\n");
  std::printf("%8s |", "GPUs");
  for (auto s : strategies) {
    std::printf(" %20s |", sim::to_string(s));
  }
  std::printf("   (total kilo-tok/s, [per-GPU tok/s])\n");

  std::map<int, std::map<int, Cell>> grid;
  for (int p : gpus) {
    const std::int64_t n = 16 * p;  // batch 128 -> 512 microbatches
    sim::ModelDims dims;
    dims.hidden = 2048;
    dims.seq = 8192;
    dims.microbatch = G;
    dims.layers = 32;
    dims.heads = 32;
    // Scaling figures train synthetic data; a compact tokenizer keeps the
    // LM head from skewing stage balance at layer-per-rank granularity.
    dims.vocab = 4096;
    const sim::Topology topo = sim::Topology::nvlink_ethernet(p, 8);
    std::printf("%8d |", p);
    for (int i = 0; i < 3; ++i) {
      const Cell c = run_cell(strategies[i], dims, n, topo);
      grid[p][i] = c;
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%6.1f [%6.0f]",
                    c.tokens_per_s_per_gpu * p / 1000.0,
                    c.tokens_per_s_per_gpu);
      std::printf(" %20s |", buf);
    }
    std::printf("\n");
  }

  std::printf("\n== shape checks vs paper Figure 7 ==\n");
  auto retention = [&](int idx) {
    return grid[32][idx].tokens_per_s_per_gpu /
           grid[8][idx].tokens_per_s_per_gpu;
  };
  const double weipipe_keep = retention(2);
  const double f1b_keep = retention(0);
  const double fsdp_keep = retention(1);
  char detail[160];
  std::snprintf(detail, sizeof(detail),
                "per-GPU retention 8->32 GPUs: WeiPipe %.2f vs 1F1B %.2f, "
                "FSDP %.2f",
                weipipe_keep, f1b_keep, fsdp_keep);
  shape_check("weipipe-weak-scales-best",
              weipipe_keep >= f1b_keep && weipipe_keep >= fsdp_keep, detail);
  shape_check("weipipe-highest-per-gpu-at-32",
              grid[32][2].tokens_per_s_per_gpu >=
                  std::max(grid[32][0].tokens_per_s_per_gpu,
                           grid[32][1].tokens_per_s_per_gpu),
              "paper: WeiPipe per-GPU highest at the largest scale");
  return 0;
}
