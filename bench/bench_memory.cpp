// Memory deep-dive (paper §4.2.4 + §6.1.1): per-strategy peak activation
// memory, its growth with in-flight microbatches, the recompute and
// Flash-Attention levers, and a coarse worst-rank memory-over-time curve.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "prof/profile.hpp"
#include "sim/cost_model.hpp"

using namespace weipipe;
using namespace weipipe::bench;

namespace {

void memory_curve(const sim::SimResult& res) {
  // Coarse ASCII plot of the worst rank's resident activation bytes.
  int worst = 0;
  for (std::size_t rk = 1; rk < res.peak_act_bytes.size(); ++rk) {
    if (res.peak_act_bytes[rk] > res.peak_act_bytes[worst]) {
      worst = static_cast<int>(rk);
    }
  }
  const double peak = res.peak_act_bytes[worst];
  constexpr int kCols = 64;
  constexpr int kRows = 8;
  std::vector<double> level(kCols, 0.0);
  for (const sim::OpRecord& rec : res.records) {
    if (rec.rank != worst) {
      continue;
    }
    const int c = std::min(
        kCols - 1, static_cast<int>(rec.end / res.makespan * kCols));
    level[static_cast<std::size_t>(c)] =
        std::max(level[static_cast<std::size_t>(c)], rec.act_bytes_after);
  }
  // Forward-fill gaps for readability.
  for (int c = 1; c < kCols; ++c) {
    if (level[static_cast<std::size_t>(c)] == 0.0) {
      level[static_cast<std::size_t>(c)] = level[static_cast<std::size_t>(c - 1)];
    }
  }
  std::printf("  worst rank %d, peak %.1f GB; activation residency over time:\n",
              worst, peak / 1e9);
  for (int row = kRows; row >= 1; --row) {
    std::printf("    |");
    for (int c = 0; c < kCols; ++c) {
      const double frac = level[static_cast<std::size_t>(c)] / peak;
      std::printf("%c", frac * kRows >= row ? '#' : ' ');
    }
    std::printf("|\n");
  }
}

}  // namespace

int main() {
  sim::ModelDims dims;
  dims.hidden = 2048;
  dims.seq = 8192;
  dims.microbatch = 8;
  dims.layers = 32;
  const int P = 16;
  const sim::GpuSpec gpu;
  const sim::Topology topo = sim::Topology::nvlink(P, 8);

  std::printf("== Peak activation memory by strategy (H=2048 S=8192 G=8, "
              "16 GPUs, N=64) ==\n");
  std::printf("%-22s | %12s | %s\n", "strategy", "peak GB", "policy");
  double peak_1f1b = 0.0;
  double peak_zb1 = 0.0;
  double peak_zb2 = 0.0;
  double peak_weipipe = 0.0;
  for (auto s : {sim::Strategy::kGPipe, sim::Strategy::k1F1B,
                 sim::Strategy::kZB1, sim::Strategy::kZB2,
                 sim::Strategy::kWeiPipeNaive,
                 sim::Strategy::kWeiPipeInterleave}) {
    sim::ExperimentConfig cfg;
    cfg.dims = dims;
    cfg.num_microbatches = 64;
    cfg.strategy = s;
    const auto res = sim::run_experiment(cfg, topo);
    const double peak = res.sim.max_peak_act_bytes() / 1e9;
    const bool zb = s == sim::Strategy::kZB1 || s == sim::Strategy::kZB2;
    std::printf("%-22s | %12.1f | %s\n", sim::to_string(s), peak,
                zb ? "full internals (no recompute possible)"
                   : "recompute (inputs only)");
    if (s == sim::Strategy::k1F1B) peak_1f1b = peak;
    if (s == sim::Strategy::kZB1) peak_zb1 = peak;
    if (s == sim::Strategy::kZB2) peak_zb2 = peak;
    if (s == sim::Strategy::kWeiPipeInterleave) peak_weipipe = peak;
  }

  std::printf("\n== Memory-over-time, WeiPipe-Interleave vs ZB2 ==\n");
  {
    sim::ExperimentConfig cfg;
    cfg.dims = dims;
    cfg.num_microbatches = 64;
    cfg.record_ops = true;
    cfg.strategy = sim::Strategy::kWeiPipeInterleave;
    std::printf("WeiPipe-Interleave:\n");
    memory_curve(sim::run_experiment(cfg, topo).sim);
    cfg.strategy = sim::Strategy::kZB2;
    std::printf("ZB2:\n");
    memory_curve(sim::run_experiment(cfg, topo).sim);
  }

  std::printf("\n== The two levers (per layer per microbatch) ==\n");
  const sim::CostModel recompute(dims, gpu, {true, true});
  const sim::CostModel full_flash(dims, gpu, {false, true});
  const sim::CostModel full_noflash(dims, gpu, {false, false});
  std::printf("  recompute + flash : %8.2f GB\n",
              recompute.act_mem_layer_bytes() / 1e9);
  std::printf("  full + flash      : %8.2f GB (ZB's floor)\n",
              full_flash.act_mem_layer_bytes() / 1e9);
  std::printf("  full + no flash   : %8.2f GB (S^2 probabilities)\n",
              full_noflash.act_mem_layer_bytes() / 1e9);

  std::printf("\n== Measured full-footprint ledger vs static bounds "
              "(real engine, small model) ==\n");
  std::printf("%-12s | %10s | %10s | %10s | %10s | %10s\n", "strategy",
              "pred wts", "meas wts", "pred opt", "meas opt", "meas peak");
  for (const char* strategy : {"sequential", "weipipe", "1f1b", "fsdp"}) {
    prof::ProfileOptions opt;
    opt.strategy = strategy;
    opt.workers = 4;
    opt.iters = 1;
    opt.warmup_iters = 0;
    opt.train.model.vocab_size = 64;
    opt.train.model.dim = 32;
    opt.train.model.n_layers = 8;
    opt.train.model.n_heads = 4;
    opt.train.model.seq_len = 16;
    opt.train.seq_len = 16;
    opt.train.num_microbatches = 8;
    const prof::ProfileReport rep = prof::run_profile(opt);
    double meas_wts = 0.0;
    double meas_opt = 0.0;
    for (const auto& k : rep.ledger_kinds) {
      if (k.kind == "weights") meas_wts = k.peak_bytes;
      if (k.kind == "optimizer") meas_opt = k.peak_bytes;
    }
    std::printf("%-12s | %7.2fMiB | %7.2fMiB | %7.2fMiB | %7.2fMiB | "
                "%7.2fMiB\n",
                strategy, rep.static_weights_bound_bytes / (1024.0 * 1024.0),
                meas_wts / (1024.0 * 1024.0),
                rep.static_optimizer_bound_bytes / (1024.0 * 1024.0),
                meas_opt / (1024.0 * 1024.0),
                rep.measured_peak_footprint_bytes / (1024.0 * 1024.0));
    char buf[128];
    std::snprintf(buf, sizeof(buf), "weights %.2f<=%.2f opt %.2f<=%.2f MiB",
                  meas_wts / (1024.0 * 1024.0),
                  rep.static_weights_bound_bytes / (1024.0 * 1024.0),
                  meas_opt / (1024.0 * 1024.0),
                  rep.static_optimizer_bound_bytes / (1024.0 * 1024.0));
    shape_check((std::string("ledger-within-bounds-") + strategy).c_str(),
                meas_wts <= rep.static_weights_bound_bytes &&
                    meas_opt <= rep.static_optimizer_bound_bytes,
                buf);
  }

  std::printf("\n== shape checks vs paper §6.1.1 ==\n");
  char detail[128];
  std::snprintf(detail, sizeof(detail), "ZB1 %.1f GB vs 1F1B %.1f GB",
                peak_zb1, peak_1f1b);
  shape_check("zb-dwarfs-1f1b", peak_zb1 > 4.0 * peak_1f1b, detail);
  std::snprintf(detail, sizeof(detail), "ZB2 %.1f GB vs ZB1 %.1f GB", peak_zb2,
                peak_zb1);
  shape_check("zb2-roughly-doubles-zb1",
              peak_zb2 > 1.5 * peak_zb1 && peak_zb2 < 2.5 * peak_zb1, detail);
  std::snprintf(detail, sizeof(detail), "WeiPipe %.1f GB vs 1F1B %.1f GB",
                peak_weipipe, peak_1f1b);
  shape_check("weipipe-memory-competitive", peak_weipipe < 2.5 * peak_1f1b,
              detail);
  return 0;
}
