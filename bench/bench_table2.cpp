// Table 2 reproduction: throughput (tokens/s/GPU) and peak memory (GB) for
// Llama-style models on 16 GPUs in the paper's NVLink environment (two
// 8-GPU NVLink clusters joined by a commodity uplink). L=32, heads=32,
// N = 16 * P microbatches per iteration.
//
// Absolute tokens/s are simulator outputs calibrated to A800 specs — the
// claims under test are the *shape* rows at the bottom.
#include <cstdio>

#include "bench_util.hpp"

using namespace weipipe;
using namespace weipipe::bench;

namespace {

struct PaperRow {
  std::int64_t h, s, g;
  // 1F1B, ZB1, ZB2, FSDP, WeiPipe paper throughputs (-1 = OOM).
  double tp[5];
  double mem[5];
};

// Values transcribed from the paper's Table 2.
const PaperRow kPaper[] = {
    {1024, 4096, 16, {8581.7, 7547.0, 7638.5, 11525.9, 15138.8},
     {13.0, 20.4, 39.3, 8.6, 9.4}},
    {1024, 8192, 8, {7403.8, 6739.6, 6768.1, 9424.4, 12122.3},
     {9.9, 10.7, 20.5, 8.6, 9.4}},
    {1024, 16384, 4, {5641.2, 5651.6, 5651.9, 6973.6, 8188.3},
     {9.1, 21.6, 42.2, 8.6, 9.4}},
    {2048, 4096, 16, {4163.2, 3823.3, -1, 4104.8, 6499.7},
     {18.7, 44.3, -1, 17.9, 19.9}},
    {2048, 8192, 8, {3791.3, 3517.8, -1, 3706.8, 6033.2},
     {19.6, 22.3, -1, 17.9, 19.9}},
    {2048, 16384, 4, {3146.3, 3050.1, -1, 3087.2, 4607.8},
     {22.9, 42.9, -1, 17.9, 19.9}},
    {4096, 4096, 16, {1662.7, -1, -1, 1110.5, 2023.1},
     {40.5, -1, -1, 39.0, 44.5}},
    {4096, 8192, 8, {1556.2, -1, -1, 1063.2, 2059.4},
     {41.6, -1, -1, 39.0, 44.5}},
    {4096, 16384, 4, {1331.6, -1, -1, 944.2, 1684.9},
     {45.1, -1, -1, 39.0, 44.5}},
};

const sim::Strategy kStrategies[] = {
    sim::Strategy::k1F1B, sim::Strategy::kZB1, sim::Strategy::kZB2,
    sim::Strategy::kFSDP, sim::Strategy::kWeiPipeInterleave};

}  // namespace

int main() {
  const int P = 16;
  const std::int64_t N = 16 * P;
  const sim::Topology topo = sim::Topology::nvlink(P, 8);

  std::printf("== Table 2: 16 GPUs, NVLink environment ==\n");
  std::printf("%5s %6s %3s |", "H", "S", "G");
  for (auto s : kStrategies) {
    std::printf(" %22s |", sim::to_string(s));
  }
  std::printf("\n%s\n", std::string(140, '-').c_str());

  int weipipe_wins = 0;
  int rows = 0;
  int zb_oom_matches = 0;
  int zb_oom_cells = 0;
  double gain_vs_best_min = 1e9;
  double gain_vs_best_max = -1e9;

  for (const PaperRow& row : kPaper) {
    sim::ModelDims dims;
    dims.hidden = row.h;
    dims.seq = row.s;
    dims.microbatch = row.g;
    dims.layers = 32;
    dims.heads = 32;
    std::printf("%5lld %6lld %3lld |", static_cast<long long>(row.h),
                static_cast<long long>(row.s), static_cast<long long>(row.g));
    Cell cells[5];
    for (int i = 0; i < 5; ++i) {
      cells[i] = run_cell(kStrategies[i], dims, N, topo);
      char paper[32];
      if (row.tp[i] < 0) {
        std::snprintf(paper, sizeof(paper), "OOM");
      } else {
        std::snprintf(paper, sizeof(paper), "%.0f", row.tp[i]);
      }
      std::printf(" %10s (p:%7s) |", cell_str(cells[i]).c_str(), paper);
    }
    std::printf("\n");

    // Bookkeeping for shape checks.
    ++rows;
    double best_other = 0.0;
    for (int i = 0; i < 4; ++i) {
      if (!cells[i].oom) {
        best_other = std::max(best_other, cells[i].tokens_per_s_per_gpu);
      }
    }
    if (!cells[4].oom && cells[4].tokens_per_s_per_gpu >= best_other * 0.97) {
      ++weipipe_wins;
    }
    const double gain = cells[4].tokens_per_s_per_gpu / best_other;
    gain_vs_best_min = std::min(gain_vs_best_min, gain);
    gain_vs_best_max = std::max(gain_vs_best_max, gain);
    for (int i = 1; i <= 2; ++i) {  // ZB1, ZB2
      if (row.tp[i] < 0) {
        ++zb_oom_cells;
        if (cells[i].oom) {
          ++zb_oom_matches;
        }
      }
    }
  }

  std::printf("\n== shape checks vs paper Table 2 ==\n");
  char detail[192];
  std::snprintf(detail, sizeof(detail), "%d/%d rows", weipipe_wins, rows);
  shape_check("weipipe-at-or-near-top", weipipe_wins >= rows - 2, detail);
  std::snprintf(detail, sizeof(detail),
                "WeiPipe/best-other in [%.2f, %.2f] (paper: 1.2-1.8)",
                gain_vs_best_min, gain_vs_best_max);
  shape_check("weipipe-gain-range", gain_vs_best_min > 0.9, detail);
  std::snprintf(detail, sizeof(detail),
                "%d/%d paper-OOM cells also OOM here (misses sit at 64-76 GB, "
                "within the last-rank transient the paper notes in §6.1.1)",
                zb_oom_matches, zb_oom_cells);
  shape_check("zb-oom-pattern", zb_oom_matches >= zb_oom_cells - 2, detail);
  return 0;
}
