// Library surface: the umbrella header compiles and exposes everything, the
// trainer factory builds every strategy, datasets behave, CSV exports parse.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "weipipe.hpp"

namespace weipipe {
namespace {

TrainConfig tiny_config() {
  TrainConfig cfg;
  cfg.model.vocab_size = 32;
  cfg.model.dim = 16;
  cfg.model.n_layers = 4;
  cfg.model.n_heads = 2;
  cfg.model.seq_len = 9;
  cfg.num_microbatches = 4;
  cfg.microbatch_size = 1;
  cfg.seq_len = 9;
  cfg.seed = 31337;
  return cfg;
}

TEST(Library, VersionExposed) {
  EXPECT_GE(kVersionMajor, 1);
  EXPECT_STREQ(kVersionString, "1.0.0");
}

TEST(Factory, BuildsEveryNamedStrategy) {
  const TrainConfig cfg = tiny_config();
  for (const std::string& name : trainer_names()) {
    auto trainer = make_trainer(name, cfg, /*world=*/4);
    ASSERT_NE(trainer, nullptr) << name;
    // "weipipe" aliases "weipipe-interleave".
    if (name != "weipipe") {
      EXPECT_EQ(trainer->name(), name);
    }
    SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
    const IterationResult r = trainer->train_iteration(data, 0);
    EXPECT_GT(r.mean_loss, 0.0f) << name;
  }
}

TEST(Factory, RejectsUnknownName) {
  EXPECT_THROW(make_trainer("megatron", tiny_config(), 4), Error);
}

TEST(Factory, AllStrategiesAgreeThroughTheInterface) {
  const TrainConfig cfg = tiny_config();
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  auto ref = make_trainer("sequential", cfg, 1);
  (void)ref->train_iteration(data, 0);
  const auto ref_params = ref->gather_block_params();
  for (const char* name : {"weipipe", "1f1b", "gpipe"}) {
    auto t = make_trainer(name, cfg, 4);
    (void)t->train_iteration(data, 0);
    const auto params = t->gather_block_params();
    for (std::size_t b = 0; b < params.size(); ++b) {
      for (std::size_t i = 0; i < params[b].size(); ++i) {
        ASSERT_EQ(params[b][i], ref_params[b][i]) << name;
      }
    }
  }
}

// ---- datasets -----------------------------------------------------------------

TEST(CopyDataset, StructureIsCopyAfterDelimiter) {
  CopyDataset data(16, 5);
  const Microbatch mb = data.make(0, 2, 9);  // payload = 4
  for (std::int64_t g = 0; g < 2; ++g) {
    const std::int64_t base = g * 9;
    EXPECT_EQ(mb.tokens[static_cast<std::size_t>(base + 4)], 0);  // delimiter
    for (std::int64_t i = 5; i < 9; ++i) {
      EXPECT_EQ(mb.tokens[static_cast<std::size_t>(base + i)],
                mb.tokens[static_cast<std::size_t>(base + i - 5)]);
      EXPECT_NE(mb.tokens[static_cast<std::size_t>(base + i)], 0);
    }
  }
}

TEST(CopyDataset, DeterministicAndValidated) {
  CopyDataset data(16, 5);
  const Microbatch a = data.make(3, 2, 12);
  const Microbatch b = data.make(3, 2, 12);
  EXPECT_EQ(a.tokens, b.tokens);
  EXPECT_THROW(CopyDataset(2, 1), Error);
  EXPECT_THROW(data.make(0, 1, 3), Error);
}

TEST(CopyDataset, TrainableThroughPolymorphicInterface) {
  TrainConfig cfg = tiny_config();
  cfg.model.vocab_size = 12;
  cfg.adam.lr = 3e-3f;
  CopyDataset data(cfg.model.vocab_size, 5);
  WeiPipeTrainer t(cfg, 4);
  float first = 0.0f;
  float last = 0.0f;
  for (int it = 0; it < 20; ++it) {
    const float loss = t.train_iteration(data, it).mean_loss;
    if (it == 0) {
      first = loss;
    }
    last = loss;
  }
  EXPECT_LT(last, first);  // copy task is learnable
}

TEST(Perplexity, ExpOfLoss) {
  EXPECT_DOUBLE_EQ(perplexity(0.0), 1.0);
  EXPECT_NEAR(perplexity(std::log(32.0)), 32.0, 1e-9);
}

// ---- topology-fabric bridge -----------------------------------------------------

TEST(FabricBridge, DelaysScaleWithTopology) {
  const sim::Topology topo = sim::Topology::hierarchical(
      4, 2, sim::Link{1e6, 0.0}, sim::Link{1e3, 0.01}, "t");
  const comm::LinkModel model = sim::link_model_from_topology(topo);
  // Intra-node: 1000 bytes at 1 MB/s = 1 ms.
  EXPECT_NEAR(model(0, 1, 1000).count() / 1e9, 1e-3, 1e-6);
  // Inter-node: 1000 bytes at 1 KB/s + 10 ms latency = 1.01 s.
  EXPECT_NEAR(model(1, 2, 1000).count() / 1e9, 1.01, 1e-4);
  // time_scale divides bandwidth.
  const comm::LinkModel scaled = sim::link_model_from_topology(topo, 10.0);
  EXPECT_NEAR(scaled(0, 1, 1000).count() / 1e9, 1e-2, 1e-5);
}

TEST(FabricBridge, RealTrainerRunsOnEmulatedCluster) {
  TrainConfig cfg = tiny_config();
  const comm::LinkModel cluster = sim::link_model_from_topology(
      sim::Topology::pcie_ethernet(4, 2), /*time_scale=*/1.0);
  WeiPipeTrainer t(cfg, 4, {.link_model = cluster});
  SequentialTrainer ref(cfg);
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  (void)ref.train_iteration(data, 0);
  (void)t.train_iteration(data, 0);
  const auto a = t.gather_block_params();
  const auto b = ref.gather_block_params();
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      ASSERT_EQ(a[i][j], b[i][j]);  // topology changes timing, never math
    }
  }
}

// ---- CSV export ------------------------------------------------------------------

TEST(Export, RecordsCsvHasHeaderAndRows) {
  sched::StrategyCosts costs;
  for (int i = 0; i < 2; ++i) {
    costs.fwd_seconds.push_back(1.0);
    costs.bwd_seconds.push_back(2.0);
    costs.bwd_acts_seconds.push_back(1.0);
    costs.bwd_weights_seconds.push_back(1.0);
    costs.chunk_weight_bytes.push_back(8.0);
    costs.act_mem_bytes.push_back(1.0);
  }
  costs.act_bytes = 4.0;
  costs.act_grad_bytes = 4.0;
  const auto prog = sched::build_1f1b(2, 2, costs);
  const auto res = sim::simulate(
      prog, sim::Topology::uniform(2, sim::Link{1e12, 0.0}, "t"),
      {.record_ops = true});
  const std::string csv = trace::records_to_csv(res);
  std::istringstream iss(csv);
  std::string line;
  std::getline(iss, line);
  EXPECT_EQ(line, "rank,start,end,kind,microbatch,chunk,act_bytes_after");
  int rows = 0;
  while (std::getline(iss, line)) {
    ++rows;
  }
  EXPECT_EQ(rows, 8);  // 2 ranks x 2 mbs x (F + B)
}

TEST(Export, SvgContainsLanesAndOps) {
  sched::StrategyCosts costs;
  for (int i = 0; i < 2; ++i) {
    costs.fwd_seconds.push_back(1.0);
    costs.bwd_seconds.push_back(2.0);
    costs.bwd_acts_seconds.push_back(1.0);
    costs.bwd_weights_seconds.push_back(1.0);
    costs.chunk_weight_bytes.push_back(8.0);
    costs.act_mem_bytes.push_back(1.0);
  }
  costs.act_bytes = 4.0;
  costs.act_grad_bytes = 4.0;
  const auto prog = sched::build_1f1b(2, 2, costs);
  const auto res = sim::simulate(
      prog, sim::Topology::uniform(2, sim::Link{1e12, 0.0}, "t"),
      {.record_ops = true});
  const std::string svg = trace::records_to_svg(res);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("rank 0"), std::string::npos);
  EXPECT_NE(svg.find("rank 1"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // 8 compute ops + 2 lane backgrounds = 10 rects.
  std::size_t rects = 0;
  for (std::size_t at = svg.find("<rect"); at != std::string::npos;
       at = svg.find("<rect", at + 1)) {
    ++rects;
  }
  EXPECT_EQ(rects, 10u);
  EXPECT_THROW(trace::records_to_svg(sim::SimResult{}), Error);
}

TEST(Export, LinkUsageTracksHotspot) {
  sched::Program prog;
  prog.name = "links";
  prog.rank_ops.resize(3);
  prog.rank_ops[0] = {sched::SendOp{1, 1000.0, 1}, sched::SendOp{2, 10.0, 2}};
  prog.rank_ops[1] = {sched::RecvOp{0, 1}};
  prog.rank_ops[2] = {sched::RecvOp{0, 2}};
  const auto res = sim::simulate(
      prog, sim::Topology::uniform(3, sim::Link{100.0, 0.0}, "t"));
  ASSERT_EQ(res.links.size(), 2u);
  const sim::LinkUsage hot = res.hottest_link();
  EXPECT_EQ(hot.src, 0);
  EXPECT_EQ(hot.dst, 1);
  EXPECT_DOUBLE_EQ(hot.bytes, 1000.0);
  EXPECT_DOUBLE_EQ(hot.busy_seconds, 10.0);
}

TEST(Export, ExperimentsCsvRoundTripsToDisk) {
  sim::ExperimentConfig cfg;
  cfg.dims.hidden = 512;
  cfg.dims.seq = 1024;
  cfg.dims.microbatch = 2;
  cfg.dims.layers = 8;
  cfg.dims.heads = 8;
  cfg.num_microbatches = 16;
  cfg.strategy = sim::Strategy::kWeiPipeInterleave;
  std::vector<trace::ExperimentRow> rows;
  rows.push_back(
      {"demo", sim::run_experiment(cfg, sim::Topology::nvlink(4, 8))});
  const std::string csv = trace::experiments_to_csv(rows);
  EXPECT_NE(csv.find("demo,WeiPipe,"), std::string::npos);

  const std::string path =
      (std::filesystem::temp_directory_path() / "weipipe_export_test.csv")
          .string();
  trace::write_file(path, csv);
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, csv);
  std::remove(path.c_str());
  // write_file creates missing parent directories (tests/test_obs.cpp), so
  // only a path whose parent cannot be created still throws — here the
  // "parent" is an existing regular file.
  const std::string blocker =
      (std::filesystem::temp_directory_path() / "weipipe_export_blocker")
          .string();
  trace::write_file(blocker, "not a directory");
  EXPECT_THROW(trace::write_file(blocker + "/x.csv", "x"), Error);
  std::remove(blocker.c_str());
}

}  // namespace
}  // namespace weipipe
