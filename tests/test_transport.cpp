// Transport conformance battery: every wire backend (inproc mailbox, POSIX
// shared memory, TCP sockets) must present identical message semantics to
// the fabric — FIFO per (src,tag) stream, collectives at every world size,
// timeout/abort behavior, and reliability under injected faults. The final
// cross-backend test is the PR's core claim: a weipipe training run is
// bitwise identical on all three backends, with per-kind wire volumes that
// agree exactly with each other and with the paper-style closed forms.
//
// All-local mode (every rank a thread of this process) exercises the same
// backend code paths the forked rank processes use — the shm segment and the
// TCP sockets are real; only the process boundary is absent. The forked
// multi-process paths are exercised end-to-end by the weipipe_cli chaos
// launcher (tests registered in tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/factory.hpp"
#include "comm/collectives.hpp"
#include "comm/fabric.hpp"
#include "comm/transport.hpp"
#include "core/accounting.hpp"
#include "core/checkpoint.hpp"

namespace weipipe {
namespace {

using comm::Endpoint;
using comm::Fabric;
using comm::TransportSpec;

// Restores the process-default transport spec on scope exit (the trainers
// construct their fabrics through it).
class SpecGuard {
 public:
  explicit SpecGuard(const TransportSpec& s)
      : saved_(comm::default_transport_spec()) {
    comm::set_default_transport_spec(s);
  }
  ~SpecGuard() { comm::set_default_transport_spec(saved_); }
  SpecGuard(const SpecGuard&) = delete;
  SpecGuard& operator=(const SpecGuard&) = delete;

 private:
  TransportSpec saved_;
};

std::vector<std::uint8_t> pattern_payload(std::size_t size,
                                          std::uint32_t seed) {
  std::vector<std::uint8_t> p(size);
  std::uint32_t x = seed * 2654435761u + 12345u;
  for (std::size_t i = 0; i < size; ++i) {
    x = x * 1664525u + 1013904223u;
    p[i] = static_cast<std::uint8_t>(x >> 24);
  }
  return p;
}

// ---- spec parsing ------------------------------------------------------------

TEST(TransportSpec, ParseAndRoundTrip) {
  TransportSpec s = comm::parse_transport_spec("inproc");
  EXPECT_EQ(s.kind, comm::TransportKind::kInproc);
  EXPECT_TRUE(s.all_local());
  EXPECT_EQ(to_string(s), "inproc");

  s = comm::parse_transport_spec("shm:name=conf:rank=2");
  EXPECT_EQ(s.kind, comm::TransportKind::kShm);
  EXPECT_EQ(s.shm_name, "conf");
  EXPECT_EQ(s.local_rank, 2);
  EXPECT_EQ(comm::parse_transport_spec(to_string(s)).shm_name, "conf");

  s = comm::parse_transport_spec("tcp:host=10.0.0.7:port=9100:rank=1");
  EXPECT_EQ(s.kind, comm::TransportKind::kTcp);
  EXPECT_EQ(s.host, "10.0.0.7");
  EXPECT_EQ(s.base_port, 9100);
  EXPECT_EQ(s.local_rank, 1);
  const TransportSpec r = comm::parse_transport_spec(to_string(s));
  EXPECT_EQ(r.host, s.host);
  EXPECT_EQ(r.base_port, s.base_port);
  EXPECT_EQ(r.local_rank, s.local_rank);

  EXPECT_THROW(comm::parse_transport_spec("carrier-pigeon"), Error);
  EXPECT_THROW(comm::parse_transport_spec("tcp:port=notanumber"), Error);
  EXPECT_THROW(comm::parse_transport_spec("shm:rank="), Error);
}

// ---- the parameterized battery -----------------------------------------------

class TransportSuite : public ::testing::TestWithParam<const char*> {
 protected:
  TransportSpec spec() const { return comm::parse_transport_spec(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(Backends, TransportSuite,
                         ::testing::Values("inproc", "shm", "tcp"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST_P(TransportSuite, P2pFifoOrderingPerTagStream) {
  Fabric fabric(2, nullptr, spec());
  EXPECT_STREQ(fabric.transport_name(), GetParam());
  constexpr int kMessages = 200;
  run_workers(fabric, [&](int rank, Endpoint& ep) {
    if (rank == 0) {
      for (int i = 0; i < kMessages; ++i) {
        // Two interleaved tag streams; FIFO must hold within each.
        const std::int64_t tag = 7 + (i % 2);
        std::vector<std::uint8_t> payload(sizeof(int));
        std::memcpy(payload.data(), &i, sizeof(int));
        ep.send(1, tag, std::move(payload));
      }
    } else {
      int expect_even = 0;
      int expect_odd = 1;
      for (int i = 0; i < kMessages; ++i) {
        const std::int64_t tag = 7 + (i % 2);
        const std::vector<std::uint8_t> got = ep.recv(0, tag);
        ASSERT_EQ(got.size(), sizeof(int));
        int value = -1;
        std::memcpy(&value, got.data(), sizeof(int));
        int& expect = (i % 2 == 0) ? expect_even : expect_odd;
        EXPECT_EQ(value, expect);
        expect += 2;
      }
    }
  });
  // Sender-side accounting is transport-independent.
  EXPECT_EQ(fabric.pair_stats(0, 1).messages,
            static_cast<std::uint64_t>(kMessages));
}

TEST_P(TransportSuite, LargePayloadsStreamThroughBoundedWires) {
  // 1 MiB frames exceed the shm edge ring (256 KiB) and any default socket
  // buffer: they must stream across in multiple pumps, bit-exact.
  Fabric fabric(2, nullptr, spec());
  constexpr std::size_t kBytes = 1 << 20;
  constexpr int kFrames = 3;
  run_workers(fabric, [&](int rank, Endpoint& ep) {
    if (rank == 0) {
      for (int i = 0; i < kFrames; ++i) {
        ep.send(1, 42, pattern_payload(kBytes, static_cast<std::uint32_t>(i)));
      }
    } else {
      for (int i = 0; i < kFrames; ++i) {
        const std::vector<std::uint8_t> got = ep.recv(0, 42);
        ASSERT_EQ(got.size(), kBytes);
        EXPECT_EQ(got, pattern_payload(kBytes, static_cast<std::uint32_t>(i)));
      }
    }
  });
  EXPECT_EQ(fabric.bytes_sent(0, 1),
            static_cast<std::uint64_t>(kFrames) * kBytes);
}

TEST_P(TransportSuite, CollectivesAgreeAtEveryWorldSize) {
  for (const int world : {1, 2, 3, 4, 7, 8}) {
    SCOPED_TRACE("world=" + std::to_string(world));
    Fabric fabric(world, nullptr, spec());
    const std::size_t n = 3;  // shard size
    run_workers(fabric, [&](int rank, Endpoint& ep) {
      const int p = world;
      // all_gather: rank r's shard is [r*10, r*10+1, ...].
      std::vector<float> shard(n), full(n * static_cast<std::size_t>(p));
      for (std::size_t k = 0; k < n; ++k) {
        shard[k] = static_cast<float>(rank * 10) + static_cast<float>(k);
      }
      ring_all_gather(ep, shard, full, WirePrecision::Fp32);
      for (int r = 0; r < p; ++r) {
        for (std::size_t k = 0; k < n; ++k) {
          ASSERT_EQ(full[static_cast<std::size_t>(r) * n + k],
                    static_cast<float>(r * 10) + static_cast<float>(k));
        }
      }
      // reduce_scatter: every rank contributes (rank+1)*(i+1).
      std::vector<float> contrib(n * static_cast<std::size_t>(p));
      for (std::size_t i = 0; i < contrib.size(); ++i) {
        contrib[i] = static_cast<float>((rank + 1) * (i + 1));
      }
      std::vector<float> reduced(n);
      ring_reduce_scatter(ep, contrib, reduced, WirePrecision::Fp32);
      const float rank_sum = static_cast<float>(p * (p + 1) / 2);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = static_cast<std::size_t>(rank) * n + k;
        ASSERT_EQ(reduced[k], rank_sum * static_cast<float>(i + 1));
      }
      // all_reduce: buffer[i] = rank + i -> p*i + p*(p-1)/2.
      std::vector<float> buf(n * static_cast<std::size_t>(p));
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = static_cast<float>(rank) + static_cast<float>(i);
      }
      ring_all_reduce(ep, buf, WirePrecision::Fp32);
      for (std::size_t i = 0; i < buf.size(); ++i) {
        ASSERT_EQ(buf[i], static_cast<float>(p) * static_cast<float>(i) +
                              static_cast<float>(p * (p - 1) / 2));
      }
      // scalar all-reduce, deterministic association.
      const double total = ring_all_reduce_scalar(ep, rank + 1.0);
      ASSERT_EQ(total, static_cast<double>(p * (p + 1) / 2));
      // broadcast from the highest rank.
      std::vector<float> bc(n);
      const int root = p - 1;
      if (rank == root) {
        for (std::size_t k = 0; k < n; ++k) {
          bc[k] = static_cast<float>(2 * k + 1);
        }
      }
      ring_broadcast(ep, root, bc, WirePrecision::Fp32);
      for (std::size_t k = 0; k < n; ++k) {
        ASSERT_EQ(bc[k], static_cast<float>(2 * k + 1));
      }
      // reduce_to_root onto rank 0.
      std::vector<float> one(n, static_cast<float>(rank + 1));
      std::vector<float> root_out(n);
      ring_reduce_to_root(ep, 0, one, root_out, WirePrecision::Fp32);
      if (rank == 0) {
        for (std::size_t k = 0; k < n; ++k) {
          ASSERT_EQ(root_out[k], rank_sum);
        }
      }
      barrier(ep);
    });
  }
}

TEST_P(TransportSuite, ZeroCopyPointerIdentityWhereSupported) {
  Fabric fabric(2, nullptr, spec());
  std::atomic<const std::uint8_t*> sent_ptr{nullptr};
  const std::vector<std::uint8_t> expect = pattern_payload(64, 9);
  run_workers(fabric, [&](int rank, Endpoint& ep) {
    if (rank == 0) {
      comm::Buffer buf = comm::Buffer::allocate(expect.size());
      std::memcpy(buf.mutable_data(), expect.data(), expect.size());
      sent_ptr.store(buf.data(), std::memory_order_release);
      ep.send(1, 3, std::move(buf));
    } else {
      const comm::Buffer got = ep.recv_buffer(0, 3);
      ASSERT_EQ(got.size(), expect.size());
      EXPECT_EQ(0, std::memcmp(got.data(), expect.data(), expect.size()));
      if (fabric.transport_zero_copy()) {
        // Inproc: the receiver holds the sender's storage — same bytes, no
        // copy ever happened.
        EXPECT_EQ(got.data(), sent_ptr.load(std::memory_order_acquire));
      } else {
        // Multi-process wires rematerialize into receiver-owned storage.
        EXPECT_NE(got.data(), sent_ptr.load(std::memory_order_acquire));
        EXPECT_TRUE(got.tracked());
      }
    }
  });
}

TEST_P(TransportSuite, RecvTimeoutSurfacesStructuredError) {
  Fabric fabric(2, nullptr, spec());
  fabric.set_recv_timeout(std::chrono::milliseconds(250));
  bool threw = false;
  try {
    run_workers(fabric, [&](int rank, Endpoint& ep) {
      if (rank == 1) {
        ep.recv(0, 11);  // rank 0 never sends
      }
    });
  } catch (const comm::CommError& e) {
    threw = true;
    EXPECT_EQ(e.info().kind, comm::CommErrorKind::kRecvTimeout);
    EXPECT_EQ(e.info().rank, 1);
    EXPECT_EQ(e.info().peer, 0);
    EXPECT_EQ(e.info().tag, 11);
  }
  EXPECT_TRUE(threw);
}

TEST_P(TransportSuite, AbortWakesParkedReceiver) {
  Fabric fabric(2, nullptr, spec());
  fabric.set_recv_timeout(std::chrono::milliseconds(30000));
  bool aborted = false;
  try {
    run_workers(fabric, [&](int rank, Endpoint& ep) {
      if (rank == 1) {
        ep.recv(0, 5);  // parks; only the abort can release it promptly
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        fabric.abort_all();
      }
    });
  } catch (const comm::CommError& e) {
    aborted = true;
    EXPECT_EQ(e.info().kind, comm::CommErrorKind::kAborted);
  }
  EXPECT_TRUE(aborted);
  EXPECT_TRUE(fabric.aborted());
}

TEST_P(TransportSuite, ReliabilityHoldsUnderDupDropReorder) {
  Fabric fabric(2, nullptr, spec());
  fabric.install_fault_plan(comm::parse_fault_plan(
      "drop:p=0.3:ms=1,dup:p=0.3,reorder:p=0.3,delay:p=0.5:ms=1", 2024));
  constexpr int kMessages = 120;
  run_workers(fabric, [&](int rank, Endpoint& ep) {
    if (rank == 0) {
      for (int i = 0; i < kMessages; ++i) {
        std::vector<std::uint8_t> payload(sizeof(int));
        std::memcpy(payload.data(), &i, sizeof(int));
        ep.send(1, 13, std::move(payload));
      }
    } else {
      for (int i = 0; i < kMessages; ++i) {
        const std::vector<std::uint8_t> got = ep.recv(0, 13);
        ASSERT_EQ(got.size(), sizeof(int));
        int value = -1;
        std::memcpy(&value, got.data(), sizeof(int));
        ASSERT_EQ(value, i);  // exactly once, in order, despite the chaos
      }
    }
  });
  const comm::FaultStats stats = fabric.fault_stats();
  EXPECT_GT(stats.drops, 0u);
  EXPECT_EQ(stats.retries, stats.drops);  // every drop retransmitted
  EXPECT_GT(stats.duplicates, 0u);
  EXPECT_EQ(stats.duplicates_discarded, stats.duplicates);
  EXPECT_GT(stats.reorders, 0u);
  // Logical-message accounting excludes retransmits and duplicate copies.
  EXPECT_EQ(fabric.pair_stats(0, 1).messages,
            static_cast<std::uint64_t>(kMessages));
}

// ---- the cross-backend differ ------------------------------------------------

struct BackendRun {
  TrainerState state;
  acct::KindVolumes volumes;  // final iteration (trainers reset per iter)
  std::uint64_t wire_bytes = 0;
};

BackendRun run_weipipe_on(const std::string& spec_text, const TrainConfig& cfg,
                          int world, int iterations) {
  SpecGuard guard(comm::parse_transport_spec(spec_text));
  std::unique_ptr<Trainer> trainer = make_trainer("weipipe", cfg, world);
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  BackendRun run;
  for (int it = 0; it < iterations; ++it) {
    run.wire_bytes = trainer->train_iteration(data, it).wire_bytes;
  }
  run.volumes = acct::measured_kind_volumes(*trainer->fabric());
  run.state = trainer->export_state();
  return run;
}

void expect_bitwise_equal(const TrainerState& a, const TrainerState& b,
                          const std::string& label) {
  ASSERT_EQ(a.step_count, b.step_count) << label;
  ASSERT_EQ(a.block_params.size(), b.block_params.size()) << label;
  const auto blocks_equal = [&](const std::vector<std::vector<float>>& x,
                                const std::vector<std::vector<float>>& y,
                                const char* what) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_EQ(x[i].size(), y[i].size()) << label << " " << what << " " << i;
      EXPECT_EQ(0, std::memcmp(x[i].data(), y[i].data(),
                               x[i].size() * sizeof(float)))
          << label << ": " << what << " block " << i << " diverged";
    }
  };
  blocks_equal(a.block_params, b.block_params, "params");
  blocks_equal(a.adam_m, b.adam_m, "adam_m");
  blocks_equal(a.adam_v, b.adam_v, "adam_v");
}

TEST(TransportCrossBackend, WeiPipeBitwiseIdenticalAndVolumesMatch) {
  TrainConfig cfg;
  cfg.model.vocab_size = 32;
  cfg.model.dim = 16;
  cfg.model.n_layers = 4;
  cfg.model.n_heads = 2;
  cfg.model.seq_len = 8;
  cfg.num_microbatches = 8;
  cfg.microbatch_size = 1;
  cfg.seq_len = 8;
  cfg.seed = 606;
  const int world = 4;
  const int iterations = 2;

  const BackendRun inproc = run_weipipe_on("inproc", cfg, world, iterations);
  const BackendRun shm = run_weipipe_on("shm", cfg, world, iterations);
  const BackendRun tcp = run_weipipe_on("tcp", cfg, world, iterations);

  expect_bitwise_equal(inproc.state, shm.state, "shm vs inproc");
  expect_bitwise_equal(inproc.state, tcp.state, "tcp vs inproc");

  // Wire accounting is sender-side per logical message: byte counts must
  // agree exactly across backends...
  EXPECT_EQ(inproc.wire_bytes, shm.wire_bytes);
  EXPECT_EQ(inproc.wire_bytes, tcp.wire_bytes);
  ASSERT_EQ(inproc.volumes.size(), shm.volumes.size());
  ASSERT_EQ(inproc.volumes.size(), tcp.volumes.size());
  for (const auto& [kind, kv] : inproc.volumes) {
    for (const BackendRun* other : {&shm, &tcp}) {
      const auto it = other->volumes.find(kind);
      ASSERT_NE(it, other->volumes.end());
      EXPECT_EQ(it->second.bytes, kv.bytes) << sched::to_string(kind);
      EXPECT_EQ(it->second.messages, kv.messages) << sched::to_string(kind);
    }
  }
  // ...and with the paper-style closed forms (PR 4), backend-independently.
  ASSERT_TRUE(acct::has_predicted_kind_volumes("weipipe", cfg));
  const acct::KindVolumes predicted =
      acct::predicted_kind_volumes("weipipe", cfg, world);
  for (const auto& [kind, kv] : predicted) {
    const auto it = inproc.volumes.find(kind);
    ASSERT_NE(it, inproc.volumes.end()) << sched::to_string(kind);
    EXPECT_EQ(it->second.bytes, kv.bytes) << sched::to_string(kind);
    EXPECT_EQ(it->second.messages, kv.messages) << sched::to_string(kind);
  }
  EXPECT_EQ(predicted.size(), inproc.volumes.size());
}

}  // namespace
}  // namespace weipipe
