// Block-level gradient checks (through the full transformer layer), model
// chunking invariants, recompute-vs-saved parity, Adam, and the synthetic
// dataset / loss plumbing.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "gradcheck.hpp"
#include "nn/adam.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"

namespace weipipe {
namespace {

using testing::gradient_max_rel_error;
using testing::numeric_gradient;

ModelConfig tiny_cfg() {
  ModelConfig cfg;
  cfg.vocab_size = 16;
  cfg.dim = 8;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.seq_len = 6;
  cfg.ffn_hidden = 12;
  return cfg;
}

Microbatch tiny_mb(const ModelConfig& cfg, std::int64_t g = 2) {
  SyntheticDataset data(cfg.vocab_size, 321);
  return data.make(0, g, cfg.seq_len);
}

// ---- TransformerLayerBlock -----------------------------------------------------

TEST(TransformerLayer, ParamCountMatchesOffsets) {
  const ModelConfig cfg = tiny_cfg();
  TransformerLayerBlock block(cfg);
  const auto off = TransformerLayerBlock::offsets(cfg);
  EXPECT_EQ(block.param_count(), off.total);
  // 2 norms + 4 attention mats + 3 FFN mats.
  const std::int64_t H = cfg.dim;
  const std::int64_t F = cfg.effective_ffn_hidden();
  EXPECT_EQ(off.total, 2 * H + 4 * H * H + 3 * H * F);
}

TEST(TransformerLayer, FullLayerGradCheck) {
  const ModelConfig cfg = tiny_cfg();
  TransformerLayerBlock block(cfg);
  const Microbatch mb = tiny_mb(cfg, 1);
  Rng rng(77);
  std::vector<float> w(static_cast<std::size_t>(block.param_count()));
  block.init_params(w, rng);
  Tensor x = Tensor::randn({mb.rows(), cfg.dim}, rng);
  const Tensor dy = Tensor::randn({mb.rows(), cfg.dim}, rng);

  auto loss = [&](std::span<const float> wp, const Tensor& xp) {
    BlockCtx ctx;
    const Tensor y = block.forward(wp, mb, xp, ctx, true);
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      acc += static_cast<double>(y.data()[i]) * dy.data()[i];
    }
    return acc;
  };

  BlockCtx ctx;
  (void)block.forward(std::span<const float>(w.data(), w.size()), mb, x, ctx,
                      true);
  std::vector<float> dw(w.size(), 0.0f);
  const Tensor dx = block.backward(std::span<const float>(w.data(), w.size()),
                                   mb, ctx, dy,
                                   std::span<float>(dw.data(), dw.size()));

  const auto num_dx = numeric_gradient(
      [&](std::span<const float> p) {
        Tensor xx = Tensor::from_data(
            {mb.rows(), cfg.dim},
            std::vector<float>(p.begin(), p.end()));
        return loss(std::span<const float>(w.data(), w.size()), xx);
      },
      x.span());
  EXPECT_LT(gradient_max_rel_error(dx.span(), num_dx), 5e-3);

  const auto num_dw = numeric_gradient(
      [&](std::span<const float> p) { return loss(p, x); },
      std::span<float>(w.data(), w.size()));
  EXPECT_LT(gradient_max_rel_error(std::span<const float>(dw.data(), dw.size()),
                                   num_dw),
            5e-3);
}

TEST(TransformerLayer, RecomputeMatchesSavedExactly) {
  ModelConfig cfg = tiny_cfg();
  TransformerLayerBlock block(cfg);
  const Microbatch mb = tiny_mb(cfg);
  Rng rng(88);
  std::vector<float> w(static_cast<std::size_t>(block.param_count()));
  block.init_params(w, rng);
  const Tensor x = Tensor::randn({mb.rows(), cfg.dim}, rng);
  const Tensor dy = Tensor::randn({mb.rows(), cfg.dim}, rng);

  BlockCtx saved_ctx;
  const Tensor y1 = block.forward(std::span<const float>(w.data(), w.size()),
                                  mb, x, saved_ctx, /*save_internals=*/true);
  std::vector<float> dw1(w.size(), 0.0f);
  const Tensor dx1 =
      block.backward(std::span<const float>(w.data(), w.size()), mb,
                     saved_ctx, dy, std::span<float>(dw1.data(), dw1.size()));

  BlockCtx light_ctx;
  const Tensor y2 = block.forward(std::span<const float>(w.data(), w.size()),
                                  mb, x, light_ctx, /*save_internals=*/false);
  EXPECT_TRUE(light_ctx.saved.empty());
  std::vector<float> dw2(w.size(), 0.0f);
  const Tensor dx2 =
      block.backward(std::span<const float>(w.data(), w.size()), mb,
                     light_ctx, dy, std::span<float>(dw2.data(), dw2.size()));

  EXPECT_EQ(max_abs_diff(y1, y2), 0.0f);
  EXPECT_EQ(max_abs_diff(dx1, dx2), 0.0f);
  for (std::size_t i = 0; i < dw1.size(); ++i) {
    ASSERT_EQ(dw1[i], dw2[i]) << "dw index " << i;
  }
  // Recompute context is strictly smaller.
  EXPECT_LT(light_ctx.bytes(), saved_ctx.bytes());
}

// ---- Embedding / Head ----------------------------------------------------------

TEST(Embedding, LookupAndScatterGrad) {
  const ModelConfig cfg = tiny_cfg();
  EmbeddingBlock block(cfg);
  Rng rng(5);
  std::vector<float> w(static_cast<std::size_t>(block.param_count()));
  block.init_params(w, rng);

  Microbatch mb;
  mb.batch = 1;
  mb.seq = 3;
  mb.tokens = {2, 2, 7};
  mb.targets = {2, 7, 1};
  BlockCtx ctx;
  const Tensor y = block.forward(std::span<const float>(w.data(), w.size()),
                                 mb, Tensor(), ctx, true);
  for (std::int64_t j = 0; j < cfg.dim; ++j) {
    EXPECT_EQ(y(0, j), w[static_cast<std::size_t>(2 * cfg.dim + j)]);
    EXPECT_EQ(y(1, j), y(0, j));  // repeated token, same embedding
  }
  // Backward scatters: token 2 appears twice -> accumulates twice.
  Tensor dy = Tensor::full({3, cfg.dim}, 1.0f);
  std::vector<float> dw(w.size(), 0.0f);
  (void)block.backward(std::span<const float>(w.data(), w.size()), mb, ctx,
                       dy, std::span<float>(dw.data(), dw.size()));
  EXPECT_EQ(dw[static_cast<std::size_t>(2 * cfg.dim)], 2.0f);
  EXPECT_EQ(dw[static_cast<std::size_t>(7 * cfg.dim)], 1.0f);
  EXPECT_EQ(dw[static_cast<std::size_t>(1 * cfg.dim)], 0.0f);
}

TEST(Embedding, RejectsOutOfRangeToken) {
  const ModelConfig cfg = tiny_cfg();
  EmbeddingBlock block(cfg);
  Rng rng(5);
  std::vector<float> w(static_cast<std::size_t>(block.param_count()));
  block.init_params(w, rng);
  Microbatch mb;
  mb.batch = 1;
  mb.seq = 1;
  mb.tokens = {static_cast<std::int32_t>(cfg.vocab_size)};
  mb.targets = {0};
  BlockCtx ctx;
  EXPECT_THROW(
      block.forward(std::span<const float>(w.data(), w.size()), mb, Tensor(),
                    ctx, true),
      Error);
}

TEST(Head, GradCheck) {
  const ModelConfig cfg = tiny_cfg();
  HeadBlock block(cfg);
  const Microbatch mb = tiny_mb(cfg, 1);
  Rng rng(6);
  std::vector<float> w(static_cast<std::size_t>(block.param_count()));
  block.init_params(w, rng);
  const Tensor x = Tensor::randn({mb.rows(), cfg.dim}, rng);

  auto loss = [&](std::span<const float> wp) {
    BlockCtx ctx;
    const Tensor logits = block.forward(wp, mb, x, ctx, true);
    return static_cast<double>(cross_entropy_loss(logits, mb).loss);
  };

  BlockCtx ctx;
  const Tensor logits = block.forward(
      std::span<const float>(w.data(), w.size()), mb, x, ctx, true);
  const LossResult lr = cross_entropy_loss(logits, mb);
  std::vector<float> dw(w.size(), 0.0f);
  (void)block.backward(std::span<const float>(w.data(), w.size()), mb, ctx,
                       lr.dlogits, std::span<float>(dw.data(), dw.size()));
  const auto num = numeric_gradient(
      [&](std::span<const float> p) { return loss(p); },
      std::span<float>(w.data(), w.size()));
  EXPECT_LT(gradient_max_rel_error(std::span<const float>(dw.data(), dw.size()),
                                   num),
            5e-3);
}

// ---- Model / chunking -----------------------------------------------------------

TEST(Model, BlockStructure) {
  const ModelConfig cfg = tiny_cfg();
  Model model(cfg);
  EXPECT_EQ(model.num_blocks(), cfg.n_layers + 2);
  EXPECT_EQ(model.block(0).name(), "embedding");
  EXPECT_EQ(model.block(1).name(), "layer");
  EXPECT_EQ(model.block(model.num_blocks() - 1).name(), "head");
}

class ChunkingShapes : public ::testing::TestWithParam<
                           std::pair<std::int64_t, std::int64_t>> {};

TEST_P(ChunkingShapes, ChunksPartitionAllBlocks) {
  const auto [layers, num_chunks] = GetParam();
  ModelConfig cfg = tiny_cfg();
  cfg.n_layers = layers;
  Model model(cfg);
  const auto chunks = model.make_chunks(num_chunks);
  ASSERT_EQ(static_cast<std::int64_t>(chunks.size()), num_chunks);
  EXPECT_EQ(chunks.front().begin, 0);
  EXPECT_EQ(chunks.back().end, model.num_blocks());
  std::int64_t total_params = 0;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    if (c > 0) {
      EXPECT_EQ(chunks[c].begin, chunks[c - 1].end);  // contiguous
    }
    EXPECT_LT(chunks[c].begin, chunks[c].end);  // non-empty
    total_params += chunks[c].param_count;
  }
  EXPECT_EQ(total_params, model.total_param_count());
}

INSTANTIATE_TEST_SUITE_P(Shapes, ChunkingShapes,
                         ::testing::Values(std::make_pair(2L, 2L),
                                           std::make_pair(4L, 2L),
                                           std::make_pair(4L, 4L),
                                           std::make_pair(5L, 3L),
                                           std::make_pair(8L, 3L),
                                           std::make_pair(6L, 6L)));

TEST(Model, ChunkCountMustNotExceedLayers) {
  const ModelConfig cfg = tiny_cfg();  // 2 layers
  Model model(cfg);
  EXPECT_THROW(model.make_chunks(3), Error);
  EXPECT_THROW(model.make_chunks(0), Error);
}

TEST(Model, ChunkInitMatchesBlockInit) {
  ModelConfig cfg = tiny_cfg();
  cfg.n_layers = 4;
  Model model(cfg);
  const auto block_params = model.init_block_params(123);
  const auto chunks = model.make_chunks(2);
  const auto chunk_params = model.init_chunk_params(chunks, 123);
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    for (std::int64_t b = chunks[c].begin; b < chunks[c].end; ++b) {
      const std::int64_t off = model.block_offset_in_chunk(chunks[c], b);
      const auto& expected = block_params[static_cast<std::size_t>(b)];
      for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(chunk_params[c][static_cast<std::size_t>(off) + i],
                  expected[i])
            << "block " << b << " elem " << i;
      }
    }
  }
}

TEST(Model, ForwardBackwardFullModelGradCheck) {
  ModelConfig cfg = tiny_cfg();
  Model model(cfg);
  const auto params = model.init_block_params(55);
  const Microbatch mb = tiny_mb(cfg, 1);

  // Check gradient of the first layer's weights through the whole model.
  auto total_loss = [&](const std::vector<std::vector<float>>& p) {
    std::vector<BlockCtx> ctxs;
    const Tensor logits = model.forward_all(p, mb, ctxs);
    return static_cast<double>(cross_entropy_loss(logits, mb).loss);
  };

  std::vector<BlockCtx> ctxs;
  const Tensor logits = model.forward_all(params, mb, ctxs);
  const LossResult lr = cross_entropy_loss(logits, mb);
  std::vector<std::vector<float>> grads;
  for (const auto& p : params) {
    grads.emplace_back(p.size(), 0.0f);
  }
  model.backward_all(params, mb, ctxs, lr.dlogits, grads);

  auto mutable_params = params;
  auto& w1 = mutable_params[1];
  const auto num = numeric_gradient(
      [&](std::span<const float>) { return total_loss(mutable_params); },
      std::span<float>(w1.data(), w1.size()));
  EXPECT_LT(gradient_max_rel_error(
                std::span<const float>(grads[1].data(), grads[1].size()), num),
            1e-2);
}

// ---- Adam -----------------------------------------------------------------------

TEST(Adam, SingleStepMatchesFormula) {
  AdamShard adam(1);
  std::vector<float> w = {1.0f};
  std::vector<float> g = {0.5f};
  AdamConfig cfg;
  cfg.lr = 0.1f;
  adam.step(std::span<float>(w.data(), 1),
            std::span<const float>(g.data(), 1), cfg);
  // After one step, m_hat = g, v_hat = g^2 => update = lr * g/(|g|+eps) ~ lr.
  EXPECT_NEAR(w[0], 1.0f - 0.1f, 1e-4f);
  EXPECT_EQ(adam.step_count(), 1);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 elementwise.
  AdamShard adam(4);
  std::vector<float> w = {0.0f, 10.0f, -5.0f, 3.0f};
  AdamConfig cfg;
  cfg.lr = 0.05f;
  for (int it = 0; it < 2000; ++it) {
    std::vector<float> g(4);
    for (int i = 0; i < 4; ++i) {
      g[static_cast<std::size_t>(i)] = 2.0f * (w[static_cast<std::size_t>(i)] - 3.0f);
    }
    adam.step(std::span<float>(w.data(), 4),
              std::span<const float>(g.data(), 4), cfg);
  }
  for (float v : w) {
    EXPECT_NEAR(v, 3.0f, 1e-2f);
  }
}

TEST(Adam, SizeMismatchThrows) {
  AdamShard adam(2);
  std::vector<float> w = {1.0f};
  std::vector<float> g = {1.0f, 2.0f};
  EXPECT_THROW(adam.step(std::span<float>(w.data(), 1),
                         std::span<const float>(g.data(), 2), AdamConfig{}),
               Error);
}

TEST(Adam, WeightDecayShrinksWeights) {
  AdamShard adam(1);
  std::vector<float> w = {2.0f};
  std::vector<float> g = {0.0f};
  AdamConfig cfg;
  cfg.lr = 0.1f;
  cfg.weight_decay = 0.5f;
  adam.step(std::span<float>(w.data(), 1),
            std::span<const float>(g.data(), 1), cfg);
  EXPECT_LT(w[0], 2.0f);
}

// ---- Dataset ---------------------------------------------------------------------

TEST(SyntheticDataset, DeterministicAndInRange) {
  SyntheticDataset data(32, 9);
  const Microbatch a = data.make(5, 3, 10);
  const Microbatch b = data.make(5, 3, 10);
  EXPECT_EQ(a.tokens, b.tokens);
  EXPECT_EQ(a.targets, b.targets);
  const Microbatch c = data.make(6, 3, 10);
  EXPECT_NE(a.tokens, c.tokens);
  for (std::int32_t t : a.tokens) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 32);
  }
}

TEST(SyntheticDataset, TargetsShiftTokens) {
  SyntheticDataset data(64, 11);
  const Microbatch mb = data.make(0, 1, 8);
  // Within a sequence, target[i] == token[i+1] (next-token prediction).
  for (std::int64_t i = 0; i + 1 < mb.seq; ++i) {
    EXPECT_EQ(mb.targets[static_cast<std::size_t>(i)],
              mb.tokens[static_cast<std::size_t>(i + 1)]);
  }
}

}  // namespace
}  // namespace weipipe
