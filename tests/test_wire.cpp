// Wire packing: fp16/bf16 SIMD-vs-scalar bitwise equivalence (every input
// class, all 65536 16-bit patterns on unpack), int8 block-quantization
// semantics, packed-size arithmetic, and round-trip/idempotence properties
// the trainers' zero-copy relay depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "comm/wire.hpp"
#include "common/fixed_types.hpp"
#include "common/rng.hpp"

namespace weipipe::comm {
namespace {

namespace wd = wire_detail;

std::uint32_t bits_of(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

float float_of(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

// Input classes that historically diverge between hardware converters and
// scalar reference code: NaNs (payloads, signs, signalling bit), infinities,
// fp32 denormals, values at the fp16 overflow/underflow thresholds, and
// round-to-nearest-even ties.
std::vector<float> adversarial_floats() {
  std::vector<float> v = {
      0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 65504.0f, -65504.0f,
      65520.0f,   // rounds to fp16 inf
      65519.996f, // just below the overflow threshold
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN(),
      -std::numeric_limits<float>::quiet_NaN(),
      std::numeric_limits<float>::denorm_min(),
      -std::numeric_limits<float>::denorm_min(),
      std::numeric_limits<float>::min(),   // smallest normal fp32
      6.1035156e-05f,                      // smallest normal fp16
      5.9604645e-08f,                      // smallest subnormal fp16
      2.9802322e-08f,                      // half of it: ties to even (zero)
      3.0e-08f,                            // just above: rounds up
      1.0009766f,                          // fp16 RNE tie (mantissa ...1000)
      1.0029297f,                          // fp16 RNE tie (rounds up)
  };
  // NaN payload variants, including a signalling pattern.
  v.push_back(float_of(0x7F800001u));  // sNaN, payload 1
  v.push_back(float_of(0xFF800001u));
  v.push_back(float_of(0x7FC01234u));  // qNaN with payload
  v.push_back(float_of(0x7FFFFFFFu));  // all-ones payload
  // fp32 denormals of various magnitudes (flush to signed zero in fp16).
  v.push_back(float_of(0x00000001u));
  v.push_back(float_of(0x007FFFFFu));
  v.push_back(float_of(0x80400000u));
  return v;
}

// A large deterministic mixed bag: adversarial values cycled into a random
// normal background, with an odd length to exercise the SIMD tail path.
std::vector<float> mixed_input(std::size_t n) {
  const std::vector<float> hard = adversarial_floats();
  Rng rng(0xC0FFEEull + n);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = (i % 3 == 0) ? hard[i % hard.size()] : rng.normal(0.0f, 100.0f);
  }
  return v;
}

// ---- SIMD vs scalar: bitwise ------------------------------------------------

TEST(WireSimd, PackF16MatchesScalarBitwise) {
  if (!wd::simd_available()) {
    GTEST_SKIP() << "no F16C/AVX2 on this machine";
  }
  // Odd sizes cover every tail length around the 8-lane width.
  for (std::size_t n : {0u, 1u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 1021u, 4096u}) {
    const std::vector<float> input = mixed_input(n);
    std::vector<std::uint16_t> scalar(n), simd(n);
    wd::pack_f16_scalar(input.data(), n, scalar.data());
    wd::pack_f16_simd(input.data(), n, simd.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(scalar[i], simd[i])
          << "n=" << n << " i=" << i << " input bits=0x" << std::hex
          << bits_of(input[i]);
    }
  }
}

TEST(WireSimd, PackBf16MatchesScalarBitwise) {
  if (!wd::simd_available()) {
    GTEST_SKIP() << "no F16C/AVX2 on this machine";
  }
  for (std::size_t n : {0u, 1u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 1021u, 4096u}) {
    const std::vector<float> input = mixed_input(n);
    std::vector<std::uint16_t> scalar(n), simd(n);
    wd::pack_bf16_scalar(input.data(), n, scalar.data());
    wd::pack_bf16_simd(input.data(), n, simd.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(scalar[i], simd[i])
          << "n=" << n << " i=" << i << " input bits=0x" << std::hex
          << bits_of(input[i]);
    }
  }
}

TEST(WireSimd, UnpackF16MatchesScalarOnEveryBitPattern) {
  if (!wd::simd_available()) {
    GTEST_SKIP() << "no F16C/AVX2 on this machine";
  }
  // The whole 16-bit input space fits in one pass: every normal, subnormal,
  // zero, infinity, and NaN payload (signalling bit included).
  std::vector<std::uint16_t> input(65536);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint16_t>(i);
  }
  std::vector<float> scalar(input.size()), simd(input.size());
  wd::unpack_f16_scalar(input.data(), input.size(), scalar.data());
  wd::unpack_f16_simd(input.data(), input.size(), simd.data());
  for (std::size_t i = 0; i < input.size(); ++i) {
    ASSERT_EQ(bits_of(scalar[i]), bits_of(simd[i]))
        << "half bits=0x" << std::hex << i;
  }
}

TEST(WireSimd, UnpackBf16MatchesScalarOnEveryBitPattern) {
  if (!wd::simd_available()) {
    GTEST_SKIP() << "no F16C/AVX2 on this machine";
  }
  std::vector<std::uint16_t> input(65536);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint16_t>(i);
  }
  std::vector<float> scalar(input.size()), simd(input.size());
  wd::unpack_bf16_scalar(input.data(), input.size(), scalar.data());
  wd::unpack_bf16_simd(input.data(), input.size(), simd.data());
  for (std::size_t i = 0; i < input.size(); ++i) {
    ASSERT_EQ(bits_of(scalar[i]), bits_of(simd[i]))
        << "bf16 bits=0x" << std::hex << i;
  }
}

// ---- scalar semantics (also pins what the SIMD paths must reproduce) --------

TEST(WirePack, F16MatchesFixedTypesQuantization) {
  // pack_floats must be exactly Float16-per-element: the accounting model
  // and the ablation tests reason in those terms.
  const std::vector<float> input = mixed_input(257);
  const std::vector<std::uint8_t> bytes =
      pack_floats(input, WirePrecision::Fp16);
  ASSERT_EQ(bytes.size(), input.size() * 2);
  std::vector<float> out(input.size());
  unpack_floats(bytes, WirePrecision::Fp16, out);
  for (std::size_t i = 0; i < input.size(); ++i) {
    const float expect = quantize_f16(input[i]);
    if (std::isnan(expect)) {
      EXPECT_TRUE(std::isnan(out[i])) << i;
    } else {
      EXPECT_EQ(bits_of(expect), bits_of(out[i])) << i;
    }
  }
}

TEST(WirePack, RoundTripIsIdempotentPerPrecision) {
  // Quantize(quantize(x)) == quantize(x): the property that makes the
  // trainer's unpack-then-repack hop bit-identical, and thus makes relaying
  // the received buffer legal. (Int8 is excluded: re-deriving the per-chunk
  // scale from decoded values can differ in the last ulp, and the int8 wire
  // is only used for the D flow, which re-packs from fresh fp32 sums anyway.)
  const std::vector<float> input = mixed_input(333);
  for (WirePrecision p : {WirePrecision::Fp16, WirePrecision::Bf16}) {
    const std::vector<std::uint8_t> once = pack_floats(input, p);
    std::vector<float> widened(input.size());
    unpack_floats(once, p, widened);
    const std::vector<std::uint8_t> twice = pack_floats(widened, p);
    EXPECT_EQ(once, twice) << to_string(p);
  }
}

TEST(WirePack, Fp32IsBitExact) {
  const std::vector<float> input = mixed_input(100);
  const std::vector<std::uint8_t> bytes =
      pack_floats(input, WirePrecision::Fp32);
  ASSERT_EQ(bytes.size(), input.size() * 4);
  std::vector<float> out(input.size());
  unpack_floats(bytes, WirePrecision::Fp32, out);
  EXPECT_EQ(std::memcmp(input.data(), out.data(), bytes.size()), 0);
}

// ---- int8 block quantization ------------------------------------------------

TEST(WireInt8, PackedSizeLayout) {
  // ceil(n/64) fp32 scales up front, then one code byte per element.
  EXPECT_EQ(packed_size(0, WirePrecision::Int8), 0u);
  EXPECT_EQ(packed_size(1, WirePrecision::Int8), 4u + 1u);
  EXPECT_EQ(packed_size(64, WirePrecision::Int8), 4u + 64u);
  EXPECT_EQ(packed_size(65, WirePrecision::Int8), 8u + 65u);
  EXPECT_EQ(packed_size(1000, WirePrecision::Int8), 16u * 4u + 1000u);
}

TEST(WireInt8, QuantizationErrorIsBoundedPerChunk) {
  Rng rng(77);
  std::vector<float> input(1000);
  for (float& f : input) {
    f = rng.uniform(-3.0f, 3.0f);
  }
  const std::vector<std::uint8_t> bytes =
      pack_floats(input, WirePrecision::Int8);
  std::vector<float> out(input.size());
  unpack_floats(bytes, WirePrecision::Int8, out);
  for (std::size_t c = 0; c * kInt8ChunkElems < input.size(); ++c) {
    const std::size_t begin = c * kInt8ChunkElems;
    const std::size_t end = std::min(begin + kInt8ChunkElems, input.size());
    float max_abs = 0.0f;
    for (std::size_t i = begin; i < end; ++i) {
      max_abs = std::max(max_abs, std::fabs(input[i]));
    }
    const float step = max_abs / 127.0f;  // one quantization step
    for (std::size_t i = begin; i < end; ++i) {
      EXPECT_NEAR(out[i], input[i], step * 0.5f + 1e-7f) << i;
    }
  }
}

TEST(WireInt8, ExtremesSaturateAndNanEncodesAsZero) {
  std::vector<float> input(kInt8ChunkElems, 1.0f);
  input[0] = std::numeric_limits<float>::infinity();
  input[1] = -std::numeric_limits<float>::infinity();
  input[2] = std::numeric_limits<float>::quiet_NaN();
  input[3] = 127.0f;  // chunk max finite magnitude
  input[4] = -127.0f;
  const std::vector<std::uint8_t> bytes =
      pack_floats(input, WirePrecision::Int8);
  std::vector<float> out(input.size());
  unpack_floats(bytes, WirePrecision::Int8, out);
  // Scale comes from the max *finite* magnitude (127 -> step 1.0).
  EXPECT_FLOAT_EQ(out[0], 127.0f);   // +inf clamps to the max code
  EXPECT_FLOAT_EQ(out[1], -127.0f);  // -inf clamps to the min code
  EXPECT_FLOAT_EQ(out[2], 0.0f);     // NaN encodes as zero
  EXPECT_FLOAT_EQ(out[3], 127.0f);
  EXPECT_FLOAT_EQ(out[4], -127.0f);
  EXPECT_FLOAT_EQ(out[5], 1.0f);     // exactly representable at step 1.0
}

TEST(WireInt8, AllZeroAndSingleElementChunks) {
  // All-zero chunk: scale 0, every element decodes to exactly 0.
  std::vector<float> zeros(130, 0.0f);
  std::vector<float> out(zeros.size());
  unpack_floats(pack_floats(zeros, WirePrecision::Int8),
                WirePrecision::Int8, out);
  for (float f : out) {
    EXPECT_EQ(f, 0.0f);
  }
  // A lone element is its own chunk and survives exactly (code ±127).
  std::vector<float> one{-2.5f};
  std::vector<float> one_out(1);
  unpack_floats(pack_floats(one, WirePrecision::Int8), WirePrecision::Int8,
                one_out);
  EXPECT_FLOAT_EQ(one_out[0], -2.5f);
}

TEST(WireInt8, TinyDenormalScaleStaysFinite) {
  // A chunk whose max-abs is an fp32 denormal: scale/127 underflows toward
  // zero; the codec must still decode finite values (the division-based
  // encode avoids the 1/scale = inf trap).
  std::vector<float> input(3, 0.0f);
  input[0] = std::numeric_limits<float>::denorm_min();
  input[1] = -std::numeric_limits<float>::denorm_min();
  std::vector<float> out(input.size());
  unpack_floats(pack_floats(input, WirePrecision::Int8), WirePrecision::Int8,
                out);
  for (float f : out) {
    EXPECT_TRUE(std::isfinite(f));
  }
  EXPECT_EQ(out[2], 0.0f);
}

// ---- buffer-path packing ----------------------------------------------------

TEST(WirePack, PackToBufferMatchesVectorPath) {
  const std::vector<float> input = mixed_input(123);
  for (WirePrecision p : {WirePrecision::Fp32, WirePrecision::Fp16,
                          WirePrecision::Bf16, WirePrecision::Int8}) {
    const std::vector<std::uint8_t> expect = pack_floats(input, p);
    Buffer buffer = pack_floats_to_buffer(input, p);
    ASSERT_EQ(buffer.size(), expect.size()) << to_string(p);
    EXPECT_TRUE(buffer.tracked());
    EXPECT_EQ(std::memcmp(buffer.data(), expect.data(), expect.size()), 0)
        << to_string(p);
  }
}

}  // namespace
}  // namespace weipipe::comm
