// Critical-path step anatomy tests (obs/critpath.hpp): synthetic-span unit
// tests for the walk's invariants (exact tiling, producer jumps, spin-receive
// attribution, stall naming), analyze_steps splitting, JSON/ASCII rendering,
// and integration invariants on real profiled runs (sequential is ~all
// compute, path length equals the step window, an injected stall surfaces as
// a stall segment, and weipipe exposes less comm than the pipeline baseline
// at long context).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/critpath.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "prof/profile.hpp"

namespace weipipe {
namespace {

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

obs::Span make_span(obs::SpanKind kind, int rank, std::int64_t start_ns,
                    std::int64_t end_ns) {
  obs::Span s;
  s.kind = kind;
  s.rank = rank;
  s.start_ns = start_ns;
  s.end_ns = end_ns;
  return s;
}

// The walk's tiling invariant: segments are chronological, abut exactly, and
// cover [window_start, window_end] with no overlap — so the per-category
// sums equal the critical-path length by construction, in exact ns.
void expect_tiles_window(const obs::StepAnatomy& a) {
  ASSERT_FALSE(a.segments.empty());
  EXPECT_EQ(a.segments.front().start_ns, a.window_start_ns);
  EXPECT_EQ(a.segments.back().end_ns, a.window_end_ns);
  std::int64_t covered = 0;
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    const obs::PathSegment& seg = a.segments[i];
    EXPECT_LT(seg.start_ns, seg.end_ns) << "segment " << i;
    if (i > 0) {
      EXPECT_EQ(seg.start_ns, a.segments[i - 1].end_ns) << "segment " << i;
    }
    covered += seg.end_ns - seg.start_ns;
  }
  EXPECT_EQ(covered, a.window_end_ns - a.window_start_ns);
  double category_sum = 0.0;
  for (int c = 0; c < obs::kNumPathCategories; ++c) {
    category_sum += a.category_seconds[c];
  }
  EXPECT_NEAR(category_sum, a.step_seconds(), 1e-9 + 1e-9 * category_sum);
  EXPECT_NEAR(a.path_seconds(), a.step_seconds(),
              1e-9 + 1e-9 * a.path_seconds());
}

// Rank 0 computes then sends flow 7; rank 1 waits for it, then computes.
std::vector<obs::Span> producer_consumer_spans() {
  std::vector<obs::Span> spans;
  obs::Span f0 = make_span(obs::SpanKind::kForward, 0, 1'000, 5'000);
  spans.push_back(f0);
  obs::Span send = make_span(obs::SpanKind::kSendTransfer, 0, 5'000, 6'000);
  send.peer = 1;
  send.tag = 20;
  send.flow_id = 7;
  spans.push_back(send);
  obs::Span wait = make_span(obs::SpanKind::kRecvWait, 1, 2'000, 6'500);
  wait.peer = 0;
  wait.tag = 20;
  wait.flow_id = 7;
  spans.push_back(wait);
  spans.push_back(make_span(obs::SpanKind::kForward, 1, 6'500, 9'000));
  obs::Span step = make_span(obs::SpanKind::kStep, -1, 500, 10'000);
  step.microbatch = 3;
  spans.push_back(step);
  return spans;
}

TEST(Anatomy, CategoriesTileTheWindowExactly) {
  const obs::StepAnatomy a = obs::analyze_step(producer_consumer_spans());
  EXPECT_EQ(a.step_index, 3);  // carried by the kStep marker's microbatch
  EXPECT_EQ(a.ranks, 2);
  // Window spans the ranked spans only: 1000 .. 9000.
  EXPECT_EQ(a.window_start_ns, 1'000);
  EXPECT_EQ(a.window_end_ns, 9'000);
  expect_tiles_window(a);
}

TEST(Anatomy, WaitOnProducerJumpsToProducerCompute) {
  const obs::StepAnatomy a = obs::analyze_step(producer_consumer_spans());
  // The path: r0 compute [1000,5000] -> r0 send [5000,6000] (wire) ->
  // r1 exposed tail [6000,6500] (wire) -> r1 compute [6500,9000]. The
  // consumer's 4 ms of waiting BEFORE the send completed is walked on the
  // producer, not billed as exposed comm.
  const auto ns = [&](obs::PathCategory c) {
    return static_cast<std::int64_t>(
        a.seconds(c) * 1e9 + (a.seconds(c) >= 0 ? 0.5 : -0.5));
  };
  EXPECT_EQ(ns(obs::PathCategory::kCompute), 6'500);
  EXPECT_EQ(ns(obs::PathCategory::kExposedWire), 1'500);
  EXPECT_EQ(ns(obs::PathCategory::kBlockedRecv), 0);
  EXPECT_EQ(ns(obs::PathCategory::kGap), 0);
  // Both ranks hold path residency.
  ASSERT_EQ(a.rank_attribution.size(), 2u);
  EXPECT_GT(a.rank_attribution[0].total_seconds(), 0.0);
  EXPECT_GT(a.rank_attribution[1].total_seconds(), 0.0);
}

TEST(Anatomy, SpinReceiveDoesNotBillTheWholeWaitAsWire) {
  // Regression: the receiver dequeues the instant the payload lands, so its
  // wait span ends BEFORE the producer closes the transfer span. Only the
  // overlap with the transfer is exposed wire; the rest of the wait walks
  // back into the producer's compute.
  std::vector<obs::Span> spans;
  spans.push_back(make_span(obs::SpanKind::kForward, 0, 1'000, 5'500));
  obs::Span send = make_span(obs::SpanKind::kSendTransfer, 0, 5'500, 6'200);
  send.peer = 1;
  send.tag = 20;
  send.flow_id = 9;
  spans.push_back(send);
  obs::Span wait = make_span(obs::SpanKind::kRecvWait, 1, 2'000, 6'000);
  wait.peer = 0;
  wait.tag = 20;
  wait.flow_id = 9;
  spans.push_back(wait);
  spans.push_back(make_span(obs::SpanKind::kForward, 1, 6'000, 9'000));

  const obs::StepAnatomy a = obs::analyze_step(spans);
  expect_tiles_window(a);
  // Exposed wire: [5500,6000] on r1 (transfer overlap). Everything before
  // is the producer's compute [1000,5500]; after is r1's compute.
  EXPECT_NEAR(a.seconds(obs::PathCategory::kExposedWire), 500e-9, 1e-12);
  EXPECT_NEAR(a.seconds(obs::PathCategory::kCompute), 7'500e-9, 1e-12);
  EXPECT_DOUBLE_EQ(a.seconds(obs::PathCategory::kBlockedRecv), 0.0);
}

TEST(Anatomy, UnmatchedRecvIsBlockedRecv) {
  std::vector<obs::Span> spans;
  obs::Span wait = make_span(obs::SpanKind::kRecvWait, 0, 1'000, 5'000);
  wait.peer = 1;
  wait.tag = 21;
  wait.flow_id = 42;  // no matching send anywhere in the batch
  spans.push_back(wait);
  spans.push_back(make_span(obs::SpanKind::kForward, 0, 5'000, 6'000));

  const obs::StepAnatomy a = obs::analyze_step(spans);
  expect_tiles_window(a);
  EXPECT_NEAR(a.seconds(obs::PathCategory::kBlockedRecv), 4'000e-9, 1e-12);
  EXPECT_NEAR(a.seconds(obs::PathCategory::kCompute), 1'000e-9, 1e-12);
}

TEST(Anatomy, StallFaultNamesTheFrozenEdge) {
  // Rank 1 freezes under an injected stall; rank 0's wait on it never gets
  // a send. The wait must surface as kStallFault carrying the frozen edge
  // (peer=1, the wait's tag), not as an anonymous blocked receive.
  std::vector<obs::Span> spans;
  obs::Span fault = make_span(obs::SpanKind::kFault, 1, 1'500, 4'000);
  spans.push_back(fault);
  obs::Span wait = make_span(obs::SpanKind::kRecvWait, 0, 1'000, 4'200);
  wait.peer = 1;
  wait.tag = 3;
  wait.flow_id = 77;  // frozen producer: no send ever recorded
  spans.push_back(wait);
  spans.push_back(make_span(obs::SpanKind::kForward, 0, 4'200, 6'000));

  const obs::StepAnatomy a = obs::analyze_step(spans);
  expect_tiles_window(a);
  EXPECT_DOUBLE_EQ(a.seconds(obs::PathCategory::kBlockedRecv), 0.0);
  EXPECT_NEAR(a.seconds(obs::PathCategory::kStallFault), 3'200e-9, 1e-12);
  bool named = false;
  for (const obs::PathSegment& seg : a.segments) {
    if (seg.category != obs::PathCategory::kStallFault) continue;
    EXPECT_EQ(seg.peer, 1);  // the frozen producer
    EXPECT_EQ(seg.tag, 3);   // the starved wire tag
    named = true;
  }
  EXPECT_TRUE(named);
}

TEST(Anatomy, IdleStretchesAreGaps) {
  std::vector<obs::Span> spans;
  spans.push_back(make_span(obs::SpanKind::kForward, 0, 1'000, 2'000));
  spans.push_back(make_span(obs::SpanKind::kForward, 0, 5'000, 6'000));
  const obs::StepAnatomy a = obs::analyze_step(spans);
  expect_tiles_window(a);
  EXPECT_NEAR(a.seconds(obs::PathCategory::kGap), 3'000e-9, 1e-12);
  EXPECT_NEAR(a.seconds(obs::PathCategory::kCompute), 2'000e-9, 1e-12);
}

TEST(Anatomy, EmptyInputYieldsEmptyReport) {
  const obs::StepAnatomy a = obs::analyze_step({});
  EXPECT_EQ(a.ranks, 0);
  EXPECT_TRUE(a.segments.empty());
  EXPECT_DOUBLE_EQ(a.step_seconds(), 0.0);
  EXPECT_EQ(a.ascii_timeline(), "(empty step window)\n");
}

TEST(Anatomy, AnalyzeStepsSplitsAtStepMarkers) {
  std::vector<obs::Span> spans;
  obs::Span s1 = make_span(obs::SpanKind::kStep, -1, 0, 10'000);
  s1.microbatch = 1;
  spans.push_back(s1);
  spans.push_back(make_span(obs::SpanKind::kForward, 0, 1'000, 9'000));
  obs::Span s2 = make_span(obs::SpanKind::kStep, -1, 10'000, 20'000);
  s2.microbatch = 2;
  spans.push_back(s2);
  spans.push_back(make_span(obs::SpanKind::kForward, 0, 11'000, 19'000));

  const std::vector<obs::StepAnatomy> steps = obs::analyze_steps(spans);
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].step_index, 1);
  EXPECT_EQ(steps[1].step_index, 2);
  EXPECT_EQ(steps[0].window_start_ns, 1'000);
  EXPECT_EQ(steps[0].window_end_ns, 9'000);
  EXPECT_EQ(steps[1].window_start_ns, 11'000);
  EXPECT_EQ(steps[1].window_end_ns, 19'000);
}

TEST(Anatomy, JsonParsesAndTimelineRenders) {
  obs::AnatomyOptions options;
  options.wire_kind_label = [](std::int64_t tag) {
    return tag == 20 ? std::string("activation") : std::string("other");
  };
  const obs::StepAnatomy a =
      obs::analyze_step(producer_consumer_spans(), options);

  const obs::JsonParseResult parsed = obs::parse_json(a.to_json());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.find("schema_version")->as_number(),
            static_cast<double>(obs::kAnatomySchemaVersion));
  EXPECT_EQ(parsed.value.find("ranks")->as_number(), 2.0);
  ASSERT_TRUE(parsed.value.find("segments")->is_array());
  EXPECT_FALSE(parsed.value.find("segments")->array.empty());
  const obs::JsonValue* categories = parsed.value.find("categories");
  ASSERT_NE(categories, nullptr);
  EXPECT_NE(categories->find("compute"), nullptr);
  EXPECT_NE(categories->find("exposed_wire"), nullptr);

  // The classifier names the wire kinds in both report and JSON.
  ASSERT_FALSE(a.wire.empty());
  EXPECT_EQ(a.wire[0].kind, "activation");

  const std::string timeline = a.ascii_timeline(60);
  EXPECT_NE(timeline.find("r0"), std::string::npos);
  EXPECT_NE(timeline.find("r1"), std::string::npos);
  EXPECT_NE(timeline.find('C'), std::string::npos);
  EXPECT_NE(timeline.find('W'), std::string::npos);

  const std::string summary = a.summary();
  EXPECT_NE(summary.find("critical path"), std::string::npos);
  EXPECT_NE(summary.find("activation"), std::string::npos);
}

// ---- integration: real profiled runs ----------------------------------------

prof::ProfileOptions small_trainer_options(const std::string& strategy) {
  prof::ProfileOptions options;
  options.strategy = strategy;
  options.workers = 4;
  options.iters = 1;
  options.warmup_iters = 0;
  options.train.model.vocab_size = 32;
  options.train.model.dim = 16;
  options.train.model.n_layers = 4;
  options.train.model.n_heads = 2;
  options.train.model.seq_len = 8;
  options.train.seq_len = 8;
  options.train.num_microbatches = 4;
  options.train.microbatch_size = 1;
  return options;
}

TEST(AnatomyIntegration, PathLengthEqualsStepWindow) {
  const std::uint64_t steps_before =
      obs::runtime_metrics().counter("step.index").value();
  const prof::ProfileReport report =
      prof::run_profile(small_trainer_options("weipipe"));
  // Every trainer bumps the uniform process-global step counter.
  EXPECT_GT(obs::runtime_metrics().counter("step.index").value(),
            steps_before);
  ASSERT_FALSE(report.anatomy.empty());
  for (const obs::StepAnatomy& a : report.anatomy) {
    expect_tiles_window(a);
    EXPECT_GT(a.seconds(obs::PathCategory::kCompute), 0.0);
    const double frac = a.exposed_comm_fraction();
    EXPECT_GE(frac, 0.0);
    EXPECT_LE(frac, 1.0);
  }
  EXPECT_GE(report.mean_exposed_comm_fraction(), 0.0);
}

TEST(AnatomyIntegration, SequentialIsAlmostAllCompute) {
  prof::ProfileOptions options = small_trainer_options("sequential");
  options.workers = 1;
  // Big enough that traced compute dwarfs the per-op gaps (span scope entry,
  // loss bookkeeping, data staging) that a micro model would expose.
  options.train.model.dim = 64;
  options.train.model.seq_len = 64;
  options.train.seq_len = 64;
  const prof::ProfileReport report = prof::run_profile(options);
  ASSERT_FALSE(report.anatomy.empty());
  for (const obs::StepAnatomy& a : report.anatomy) {
    expect_tiles_window(a);
    EXPECT_EQ(a.ranks, 1);
    // No fabric, no waits: the single rank's step is compute end to end,
    // modulo small scheduling gaps between spans.
    EXPECT_GT(a.compute_fraction(), kSanitized ? 0.70 : 0.85);
    EXPECT_DOUBLE_EQ(a.seconds(obs::PathCategory::kExposedWire), 0.0);
    EXPECT_DOUBLE_EQ(a.seconds(obs::PathCategory::kBlockedRecv), 0.0);
  }
}

TEST(AnatomyIntegration, InjectedStallSurfacesAsStallSegment) {
  prof::ProfileOptions options = small_trainer_options("weipipe");
  // Freeze rank 1 mid-step for a hold long enough to dwarf compute; the
  // aborted step's waits must be attributed to the stall, not generic
  // blocked-recv, and the stall span itself lands on the frozen rank.
  options.fault_spec = "stall:rank=1:op=25:ms=50";
  const prof::ProfileReport report = prof::run_profile(options);
  ASSERT_TRUE(report.fault_injected);
  ASSERT_FALSE(report.anatomy.empty());
  double stall_seconds = 0.0;
  for (const obs::StepAnatomy& a : report.anatomy) {
    expect_tiles_window(a);
    stall_seconds += a.seconds(obs::PathCategory::kStallFault);
  }
  EXPECT_GT(stall_seconds, 0.0);
}

TEST(AnatomyIntegration, WeipipeExposesLessCommThanPipelineAtLongContext) {
  if (kSanitized) {
    GTEST_SKIP() << "sanitizer scheduling distorts the timing comparison";
  }
  // The paper's operating regime: long context (activation traffic large)
  // with modest per-rank weights. The same gate runs in CI via
  // `weipipe_cli anatomy --gate-vs`.
  prof::ProfileOptions options = small_trainer_options("weipipe");
  options.iters = 4;
  options.warmup_iters = 1;
  options.train.model.dim = 32;
  options.train.model.seq_len = 128;
  options.train.seq_len = 128;
  options.train.num_microbatches = 8;
  const prof::ProfileReport weipipe = prof::run_profile(options);
  options.strategy = "1f1b";
  const prof::ProfileReport pipeline = prof::run_profile(options);

  ASSERT_FALSE(weipipe.anatomy.empty());
  ASSERT_FALSE(pipeline.anatomy.empty());
  EXPECT_LT(weipipe.mean_exposed_comm_fraction(),
            pipeline.mean_exposed_comm_fraction())
      << "weipipe should hide weight circulation behind compute better "
         "than the pipeline baseline exposes activation transfers";
}

}  // namespace
}  // namespace weipipe
