// The WeiPipe turn/flow algebra: every invariant the executor and the DES
// builders rely on, property-tested across (P, R, mode).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/check.hpp"
#include "sched/weipipe_schedule.hpp"

namespace weipipe {
namespace {

struct ScheduleCase {
  std::int64_t p;
  std::int64_t r;
  WeiPipeMode mode;
};

class ScheduleProperties : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(ScheduleProperties, FlowsHoldDistinctChunksEveryTurn) {
  const auto [p, r, mode] = GetParam();
  const WeiPipeSchedule sched(p, r, mode);
  for (std::int64_t t = 0; t <= sched.total_turns(); ++t) {
    std::set<std::int64_t> f_chunks;
    std::set<std::int64_t> b_chunks;
    for (std::int64_t w = 0; w < p; ++w) {
      f_chunks.insert(sched.f_chunk_at(w, t));
      b_chunks.insert(sched.b_chunk_at(w, t));
    }
    // Each flow is a permutation: every chunk exactly once around the ring.
    EXPECT_EQ(static_cast<std::int64_t>(f_chunks.size()), p) << "turn " << t;
    EXPECT_EQ(static_cast<std::int64_t>(b_chunks.size()), p) << "turn " << t;
  }
}

TEST_P(ScheduleProperties, FlowsAdvanceOneHopPerTurn) {
  const auto [p, r, mode] = GetParam();
  const WeiPipeSchedule sched(p, r, mode);
  for (std::int64_t t = 0; t + 1 <= sched.total_turns(); ++t) {
    for (std::int64_t w = 0; w < p; ++w) {
      // What worker w holds at t arrives at worker w+1 at t+1.
      EXPECT_EQ(sched.f_chunk_at(w, t), sched.f_chunk_at((w + 1) % p, t + 1));
      EXPECT_EQ(sched.b_chunk_at(w, t), sched.b_chunk_at((w + 1) % p, t + 1));
    }
  }
}

TEST_P(ScheduleProperties, ComputeUsesExactlyTheHeldChunk) {
  const auto [p, r, mode] = GetParam();
  const WeiPipeSchedule sched(p, r, mode);
  for (std::int64_t t = 0; t < sched.total_turns(); ++t) {
    for (std::int64_t w = 0; w < p; ++w) {
      const TurnActions acts = sched.actions(w, t);
      if (acts.fwd) {
        EXPECT_EQ(acts.fwd->chunk, sched.f_chunk_at(w, t))
            << "w=" << w << " t=" << t;
      }
      if (acts.bwd) {
        EXPECT_EQ(acts.bwd->chunk, sched.b_chunk_at(w, t))
            << "w=" << w << " t=" << t;
      }
    }
  }
}

TEST_P(ScheduleProperties, EveryMicrobatchChunkComputedExactlyOnce) {
  const auto [p, r, mode] = GetParam();
  const WeiPipeSchedule sched(p, r, mode);
  // (worker, round, chunk) -> forward/backward counts.
  std::map<std::tuple<std::int64_t, std::int64_t, std::int64_t>, int> fwd;
  std::map<std::tuple<std::int64_t, std::int64_t, std::int64_t>, int> bwd;
  for (std::int64_t t = 0; t < sched.total_turns(); ++t) {
    for (std::int64_t w = 0; w < p; ++w) {
      const TurnActions acts = sched.actions(w, t);
      if (acts.fwd) {
        ++fwd[{w, acts.fwd->round, acts.fwd->chunk}];
      }
      if (acts.bwd) {
        ++bwd[{w, acts.bwd->round, acts.bwd->chunk}];
      }
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(fwd.size()), p * r * p);
  EXPECT_EQ(static_cast<std::int64_t>(bwd.size()), p * r * p);
  for (const auto& [key, count] : fwd) {
    EXPECT_EQ(count, 1);
  }
  for (const auto& [key, count] : bwd) {
    EXPECT_EQ(count, 1);
  }
}

TEST_P(ScheduleProperties, ForwardPrecedesBackwardPerChunk) {
  const auto [p, r, mode] = GetParam();
  const WeiPipeSchedule sched(p, r, mode);
  std::map<std::tuple<std::int64_t, std::int64_t, std::int64_t>, std::int64_t>
      fwd_turn;
  for (std::int64_t t = 0; t < sched.total_turns(); ++t) {
    for (std::int64_t w = 0; w < p; ++w) {
      const TurnActions acts = sched.actions(w, t);
      if (acts.fwd) {
        fwd_turn[{w, acts.fwd->round, acts.fwd->chunk}] = t;
      }
      if (acts.bwd) {
        const auto it = fwd_turn.find({w, acts.bwd->round, acts.bwd->chunk});
        ASSERT_NE(it, fwd_turn.end());
        EXPECT_LT(it->second, t);  // fwd strictly before bwd
      }
    }
  }
}

TEST_P(ScheduleProperties, ForwardChunksAscendBackwardDescend) {
  const auto [p, r, mode] = GetParam();
  const WeiPipeSchedule sched(p, r, mode);
  for (std::int64_t w = 0; w < p; ++w) {
    std::map<std::int64_t, std::vector<std::int64_t>> fwd_order;
    std::map<std::int64_t, std::vector<std::int64_t>> bwd_order;
    for (std::int64_t t = 0; t < sched.total_turns(); ++t) {
      const TurnActions acts = sched.actions(w, t);
      if (acts.fwd) {
        fwd_order[acts.fwd->round].push_back(acts.fwd->chunk);
      }
      if (acts.bwd) {
        bwd_order[acts.bwd->round].push_back(acts.bwd->chunk);
      }
    }
    for (const auto& [round, chunks] : fwd_order) {
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        EXPECT_EQ(chunks[i], static_cast<std::int64_t>(i));  // 0,1,...,P-1
      }
    }
    for (const auto& [round, chunks] : bwd_order) {
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        EXPECT_EQ(chunks[i], p - 1 - static_cast<std::int64_t>(i));
      }
    }
  }
}

TEST_P(ScheduleProperties, OwnersAreABijection) {
  const auto [p, r, mode] = GetParam();
  const WeiPipeSchedule sched(p, r, mode);
  std::set<std::int64_t> owners;
  for (std::int64_t c = 0; c < p; ++c) {
    owners.insert(sched.owner(c));
    // Owner holds chunk c's B pair at the final state.
    EXPECT_EQ(sched.b_chunk_at(sched.owner(c), sched.total_turns()), c);
  }
  EXPECT_EQ(static_cast<std::int64_t>(owners.size()), p);
}

TEST_P(ScheduleProperties, StartHoldersConsistentWithFlows) {
  const auto [p, r, mode] = GetParam();
  const WeiPipeSchedule sched(p, r, mode);
  for (std::int64_t c = 0; c < p; ++c) {
    EXPECT_EQ(sched.f_chunk_at(sched.f_start_holder(c), 0), c);
    EXPECT_EQ(sched.b_chunk_at(sched.b_start_holder(c), 0), c);
  }
}

TEST_P(ScheduleProperties, DAccumulationOrderIsGlobalMicrobatchOrder) {
  // The critical property behind bitwise fp32 equivalence with sequential
  // training: contributions to any chunk's D arrive in microbatch order.
  const auto [p, r, mode] = GetParam();
  const WeiPipeSchedule sched(p, r, mode);
  std::map<std::int64_t, std::vector<std::int64_t>> contributions;  // chunk->mb
  for (std::int64_t t = 0; t < sched.total_turns(); ++t) {
    for (std::int64_t w = 0; w < p; ++w) {
      const TurnActions acts = sched.actions(w, t);
      if (acts.bwd) {
        contributions[acts.bwd->chunk].push_back(acts.bwd->round * p + w);
      }
    }
  }
  for (const auto& [chunk, mbs] : contributions) {
    ASSERT_EQ(static_cast<std::int64_t>(mbs.size()), p * r);
    for (std::size_t i = 0; i < mbs.size(); ++i) {
      EXPECT_EQ(mbs[i], static_cast<std::int64_t>(i))
          << "chunk " << chunk << " position " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ScheduleProperties,
    ::testing::Values(ScheduleCase{2, 1, WeiPipeMode::kInterleave},
                      ScheduleCase{2, 3, WeiPipeMode::kInterleave},
                      ScheduleCase{4, 1, WeiPipeMode::kInterleave},
                      ScheduleCase{4, 4, WeiPipeMode::kInterleave},
                      ScheduleCase{7, 2, WeiPipeMode::kInterleave},
                      ScheduleCase{8, 3, WeiPipeMode::kInterleave},
                      ScheduleCase{2, 2, WeiPipeMode::kNaive},
                      ScheduleCase{4, 1, WeiPipeMode::kNaive},
                      ScheduleCase{4, 3, WeiPipeMode::kNaive},
                      ScheduleCase{5, 2, WeiPipeMode::kNaive}));

TEST(Schedule, TotalTurnsFormulas) {
  EXPECT_EQ(WeiPipeSchedule(4, 1, WeiPipeMode::kInterleave).total_turns(),
            (1 + 2) * 4 - 1);
  EXPECT_EQ(WeiPipeSchedule(4, 3, WeiPipeMode::kInterleave).total_turns(),
            (3 + 2) * 4 - 1);
  EXPECT_EQ(WeiPipeSchedule(4, 3, WeiPipeMode::kNaive).total_turns(),
            2 * 3 * 4 + 4 - 1);
}

TEST(Schedule, NaiveNeverOverlapsForwardAndBackward) {
  const WeiPipeSchedule sched(4, 3, WeiPipeMode::kNaive);
  for (std::int64_t t = 0; t < sched.total_turns(); ++t) {
    for (std::int64_t w = 0; w < 4; ++w) {
      const TurnActions acts = sched.actions(w, t);
      EXPECT_FALSE(acts.fwd && acts.bwd) << "w=" << w << " t=" << t;
    }
  }
}

TEST(Schedule, InterleaveHasSteadyStateOverlap) {
  const WeiPipeSchedule sched(4, 3, WeiPipeMode::kInterleave);
  int both = 0;
  for (std::int64_t t = 0; t < sched.total_turns(); ++t) {
    for (std::int64_t w = 0; w < 4; ++w) {
      const TurnActions acts = sched.actions(w, t);
      if (acts.fwd && acts.bwd) {
        ++both;
      }
    }
  }
  // R=3: each worker overlaps for (R-1)*P = 8 turns.
  EXPECT_EQ(both, 4 * 8);
}

TEST(Schedule, InvalidParamsThrow) {
  EXPECT_THROW(WeiPipeSchedule(0, 1, WeiPipeMode::kInterleave),
               weipipe::Error);
  EXPECT_THROW(WeiPipeSchedule(4, 0, WeiPipeMode::kInterleave),
               weipipe::Error);
}

}  // namespace
}  // namespace weipipe
