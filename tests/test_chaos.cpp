// Chaos/differential harness: golden determinism of clean runs, bitwise
// equivalence of every trainer strategy under every fault class, fault-event
// log determinism, step-boundary stall recovery, and the mutation test that
// proves the differ actually detects broken gradient dedup.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/chaos.hpp"
#include "baselines/factory.hpp"
#include "comm/fabric.hpp"
#include "comm/fault.hpp"
#include "core/accounting.hpp"
#include "core/resilience.hpp"
#include "core/weipipe_trainer.hpp"
#include "nn/microbatch.hpp"
#include "obs/health.hpp"
#include "obs/json.hpp"

namespace weipipe {
namespace {

TrainConfig tiny_config() {
  TrainConfig cfg;
  cfg.model.vocab_size = 32;
  cfg.model.dim = 16;
  cfg.model.n_layers = 4;
  cfg.model.n_heads = 2;
  cfg.model.seq_len = 8;
  cfg.num_microbatches = 4;
  cfg.microbatch_size = 1;
  cfg.seq_len = 8;
  cfg.seed = 2024;
  return cfg;
}

constexpr std::int64_t kWorld = 4;
constexpr std::int64_t kIters = 2;

struct CleanRun {
  std::vector<std::vector<float>> weights;
  // (tag -> messages, bytes) of the last iteration; in_flight fields are
  // scheduling-timing-dependent and deliberately excluded.
  std::map<std::int64_t, std::pair<std::uint64_t, std::uint64_t>> tag_traffic;
};

CleanRun clean_run(const std::string& strategy) {
  std::unique_ptr<Trainer> trainer =
      make_trainer(strategy, tiny_config(), kWorld);
  const SyntheticDataset data(tiny_config().model.vocab_size,
                              tiny_config().seed);
  for (std::int64_t i = 0; i < kIters; ++i) {
    (void)trainer->train_iteration(data, i);
  }
  CleanRun out;
  out.weights = trainer->gather_block_params();
  if (comm::Fabric* fabric = trainer->fabric()) {
    for (const auto& [tag, stats] : fabric->tag_stats()) {
      out.tag_traffic[tag] = {stats.messages, stats.bytes};
    }
  }
  return out;
}

bool bitwise_equal(const std::vector<std::vector<float>>& a,
                   const std::vector<std::vector<float>>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) {
      return false;
    }
    if (!a[i].empty() &&
        std::memcmp(a[i].data(), b[i].data(),
                    a[i].size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

// Two same-seed clean runs of every strategy: bitwise-identical weights and
// identical per-tag message/byte counts.
TEST(GoldenDeterminism, CleanRunsAreBitwiseIdentical) {
  for (const std::string& strategy : trainer_names()) {
    const CleanRun first = clean_run(strategy);
    const CleanRun second = clean_run(strategy);
    EXPECT_TRUE(bitwise_equal(first.weights, second.weights)) << strategy;
    EXPECT_EQ(first.tag_traffic, second.tag_traffic) << strategy;
    EXPECT_FALSE(first.weights.empty()) << strategy;
  }
}

// The headline sweep: strategy x fault class, all bitwise-equal to clean.
TEST(Chaos, EveryStrategySurvivesEveryFaultClassBitwise) {
  const std::vector<std::pair<std::string, std::string>> fault_classes = {
      {"delay", "delay:p=0.3:us=100"},
      {"drop", "drop:p=0.15:us=200"},
      {"dup", "dup:p=0.15:ns=0"},
      {"reorder", "reorder:p=0.15:us=100"},
      {"stall", "stall:rank=1:op=30"},
      {"mixed",
       "delay:p=0.2:us=50,drop:p=0.1:us=100,dup:p=0.1:ns=0,"
       "reorder:p=0.1:us=100,stall:rank=2:op=60"},
  };
  for (const std::string& strategy : trainer_names()) {
    for (const auto& [label, spec] : fault_classes) {
      chaos::ChaosConfig cc;
      cc.strategy = strategy;
      cc.train = tiny_config();
      cc.world_size = kWorld;
      cc.iterations = kIters;
      cc.plan = comm::parse_fault_plan(spec, 99);
      const chaos::ChaosReport r = chaos::run_chaos(cc);
      EXPECT_TRUE(r.completed)
          << strategy << " x " << label << ": " << r.error;
      EXPECT_TRUE(r.bitwise_equal)
          << strategy << " x " << label << ": max|diff|=" << r.max_abs_diff
          << " first at block " << r.first_diff.block << "["
          << r.first_diff.index << "]";
    }
  }
}

// Same FaultPlan seed => identical fault event logs (message-level plans;
// stall plans abort mid-step at a racy point, see docs/FAULTS.md).
TEST(Chaos, SameSeedProducesIdenticalFaultEventLog) {
  chaos::ChaosConfig cc;
  cc.strategy = "weipipe";
  cc.train = tiny_config();
  cc.world_size = kWorld;
  cc.iterations = kIters;
  cc.plan = comm::parse_fault_plan(
      "drop:p=0.2:us=100,dup:p=0.2:ns=0,reorder:p=0.2:us=50", 31337);
  const chaos::ChaosReport first = chaos::run_chaos(cc);
  const chaos::ChaosReport second = chaos::run_chaos(cc);
  ASSERT_TRUE(first.ok()) << first.error;
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_FALSE(first.events.empty());
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.fault_stats.drops, second.fault_stats.drops);
  EXPECT_EQ(first.fault_stats.duplicates, second.fault_stats.duplicates);
  EXPECT_EQ(first.fault_stats.reorders, second.fault_stats.reorders);

  // A different seed draws a different schedule.
  cc.plan.seed = 404;
  const chaos::ChaosReport third = chaos::run_chaos(cc);
  ASSERT_TRUE(third.ok()) << third.error;
  EXPECT_NE(first.events, third.events);
}

// A transient stall rolls the run back to the step boundary and re-runs to
// the bitwise-identical result.
TEST(Chaos, StallRecoversViaStepBoundaryRollback) {
  chaos::ChaosConfig cc;
  cc.strategy = "weipipe";
  cc.train = tiny_config();
  cc.world_size = kWorld;
  cc.iterations = kIters;
  cc.plan = comm::parse_fault_plan("stall:rank=1:op=25", 5);
  const chaos::ChaosReport r = chaos::run_chaos(cc);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_TRUE(r.bitwise_equal);
  EXPECT_EQ(r.fault_stats.stalls, 1u);
  EXPECT_GE(r.recoveries, 1);
  EXPECT_GE(r.fault_stats.recoveries, 1u);
}

// Mutation test for the harness itself: disabling the receiver's dedup (the
// FaultPlan's nodedup knob) makes a duplicated weight-grad message (tag 3 =
// kTagBD) consumed twice. The differ MUST report divergence — if this test
// fails, the chaos harness has gone vacuously green.
TEST(Chaos, BrokenGradientDedupIsCaughtByTheDiffer) {
  chaos::ChaosConfig cc;
  cc.strategy = "weipipe";
  cc.train = tiny_config();
  cc.world_size = kWorld;
  cc.iterations = kIters;
  cc.plan = comm::parse_fault_plan("nodedup,dup:p=1:tag=3:ns=0", 99);
  const chaos::ChaosReport r = chaos::run_chaos(cc);
  EXPECT_FALSE(r.ok());
  EXPECT_GT(r.fault_stats.duplicates, 0u);
}

// ---- wire-format x fault sweep over the zero-copy buffer path ---------------

// Every WireFormat the fabric can put on the wire, including the paper's
// mixed-precision config and the block-quantized int8 gradient wire.
std::vector<std::pair<std::string, PrecisionConfig>> wire_format_matrix() {
  PrecisionConfig int8_grads = PrecisionConfig::paper();
  int8_grads.weight_grads = WirePrecision::Int8;
  return {
      {"fp32", PrecisionConfig::fp32()},
      {"paper-fp16", PrecisionConfig::paper()},
      {"bf16-flows",
       PrecisionConfig{WirePrecision::Bf16, WirePrecision::Bf16,
                       WirePrecision::Bf16, WirePrecision::Bf16}},
      {"int8-grads", int8_grads},
  };
}

// Strategy x wire-format x fault-class sweep on the zero-copy buffer path:
// the reliability layer (seq reassembly + dedup + retransmission) must keep
// every wire format bitwise-equal to its own clean run. This is the PR 5
// guarantee re-proven on top of the lock-free rings and relayed buffers.
TEST(Chaos, EveryWireFormatSurvivesEveryFaultClassBitwise) {
  const std::vector<std::pair<std::string, std::string>> fault_classes = {
      {"drop", "drop:p=0.2:us=100"},
      {"dup", "dup:p=0.2:ns=0"},
      {"reorder", "reorder:p=0.2:us=100"},
      {"mixed",
       "delay:p=0.2:us=50,drop:p=0.1:us=100,dup:p=0.1:ns=0,"
       "reorder:p=0.1:us=100"},
  };
  for (const auto& [format_label, precision] : wire_format_matrix()) {
    for (const auto& [fault_label, spec] : fault_classes) {
      chaos::ChaosConfig cc;
      cc.strategy = "weipipe";
      cc.train = tiny_config();
      cc.train.precision = precision;
      cc.world_size = kWorld;
      cc.iterations = kIters;
      cc.plan = comm::parse_fault_plan(spec, 4321);
      const chaos::ChaosReport r = chaos::run_chaos(cc);
      EXPECT_TRUE(r.completed)
          << format_label << " x " << fault_label << ": " << r.error;
      EXPECT_TRUE(r.bitwise_equal)
          << format_label << " x " << fault_label
          << ": max|diff|=" << r.max_abs_diff;
    }
  }
}

// Under the same faults, the per-kind wire ledger must still match the
// closed forms exactly for every wire format: retransmissions are latency,
// dup copies are handle aliases — neither may leak into the logical
// per-kind byte/message accounting.
TEST(Chaos, KindAccountingStaysExactUnderFaultsPerWireFormat) {
  for (const auto& [format_label, precision] : wire_format_matrix()) {
    TrainConfig cfg = tiny_config();
    cfg.precision = precision;
    WeiPipeTrainer trainer(cfg, kWorld);
    trainer.fabric()->install_fault_plan(comm::parse_fault_plan(
        "drop:p=0.2:us=100,dup:p=0.2:ns=0,reorder:p=0.2:us=100", 7));
    SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
    (void)trainer.train_iteration(data, 0);
    ASSERT_TRUE(acct::has_predicted_kind_volumes("weipipe", cfg))
        << format_label;
    const acct::KindVolumes measured =
        acct::measured_kind_volumes(*trainer.fabric());
    const acct::KindVolumes predicted =
        acct::predicted_kind_volumes("weipipe", cfg, kWorld);
    for (const auto& [kind, kv] : predicted) {
      const auto it = measured.find(kind);
      ASSERT_NE(it, measured.end())
          << format_label << ": no traffic of kind " << sched::to_string(kind);
      EXPECT_EQ(it->second.bytes, kv.bytes)
          << format_label << " " << sched::to_string(kind);
      EXPECT_EQ(it->second.messages, kv.messages)
          << format_label << " " << sched::to_string(kind);
    }
    EXPECT_EQ(measured.size(), predicted.size()) << format_label;
  }
}

TEST(Chaos, ReportJsonIsParseable) {
  chaos::ChaosConfig cc;
  cc.strategy = "1f1b";
  cc.train = tiny_config();
  cc.world_size = kWorld;
  cc.iterations = 1;
  cc.plan = comm::parse_fault_plan("drop:p=0.2:us=100", 11);
  const chaos::ChaosReport r = chaos::run_chaos(cc);
  const std::string json = chaos::report_to_json(r);
  const obs::JsonParseResult parsed = obs::parse_json(json);
  EXPECT_TRUE(parsed.ok) << parsed.error;
}

// The recovery runner is a pass-through when no fault plan is installed.
TEST(Resilience, PassThroughWithoutFaultPlan) {
  const TrainConfig cfg = tiny_config();
  std::unique_ptr<Trainer> trainer = make_trainer("weipipe", cfg, kWorld);
  const SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  const RecoveryResult r = train_iteration_with_recovery(*trainer, data, 0);
  EXPECT_EQ(r.recoveries, 0);
  EXPECT_GT(r.result.wire_messages, 0u);
}

// Structured CommError context survives the JSON round trip exactly (this
// is the shape black-box dumps and external tooling consume).
TEST(CommErrorJson, ContextRoundTripsExactly) {
  comm::CommErrorInfo info;
  info.kind = comm::CommErrorKind::kRecvTimeout;
  info.rank = 2;
  info.peer = 3;
  info.tag = 5;
  info.expected_seq = 17;
  info.pending_messages = 4;
  EXPECT_EQ(comm::comm_error_info_from_json(comm::comm_error_info_to_json(
                info)),
            info);

  info.kind = comm::CommErrorKind::kStall;
  info.peer = -1;
  info.tag = -1;
  EXPECT_EQ(comm::comm_error_info_from_json(comm::comm_error_info_to_json(
                info)),
            info);

  info.kind = comm::CommErrorKind::kAborted;
  EXPECT_EQ(comm::comm_error_info_from_json(comm::comm_error_info_to_json(
                info)),
            info);
}

TEST(CommErrorJson, MalformedContextThrows) {
  EXPECT_THROW((void)comm::comm_error_info_from_json("not json"), Error);
  EXPECT_THROW((void)comm::comm_error_info_from_json("{}"), Error);
  EXPECT_THROW((void)comm::comm_error_info_from_json(
                   "{\"kind\": \"no-such-kind\", \"rank\": 0}"),
               Error);
}

// The watchdog's blocked-on-peer attribution must match the injected stall
// plan: freeze rank 1 mid-iteration and some neighbor must be judged
// STALLED blocked on exactly that rank, while the thrown CommError carries
// round-trippable structured context.
TEST(Chaos, WatchdogAttributionMatchesTheInjectedStallPlan) {
  obs::WatchdogOptions wd;
  wd.poll_seconds = 0.02;
  wd.stall_timeout_seconds = 0.15;
  wd.dead_timeout_seconds = 60.0;  // attribution only; no DEAD verdicts here
  obs::Watchdog watchdog(wd);
  watchdog.start(static_cast<int>(kWorld));

  const TrainConfig cfg = tiny_config();
  std::unique_ptr<Trainer> trainer = make_trainer("weipipe", cfg, kWorld);
  trainer->fabric()->install_fault_plan(
      comm::parse_fault_plan("stall:rank=1:op=25:ms=700", 5));
  const SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  comm::CommErrorInfo caught;
  try {
    (void)trainer->train_iteration(data, 0);
    FAIL() << "expected a CommError from the injected stall";
  } catch (const comm::CommError& e) {
    caught = e.info();
  }
  const std::vector<obs::HealthTransition> transitions =
      watchdog.transitions();
  watchdog.stop();

  EXPECT_GE(caught.rank, 0);
  EXPECT_EQ(comm::comm_error_info_from_json(
                comm::comm_error_info_to_json(caught)),
            caught);
  bool attributed = false;
  for (const obs::HealthTransition& t : transitions) {
    if (t.to == obs::RankHealth::kStalled && t.blocked_on_peer == 1) {
      attributed = true;
    }
  }
  EXPECT_TRUE(attributed)
      << "no STALLED verdict named the frozen rank 1 as the blocking peer";
}

// Direct resilience path: a stalled iteration is retried and converges to
// the same weights as an undisturbed trainer.
TEST(Resilience, StalledIterationMatchesCleanTrainerBitwise) {
  const TrainConfig cfg = tiny_config();
  const SyntheticDataset data(cfg.model.vocab_size, cfg.seed);

  std::unique_ptr<Trainer> clean = make_trainer("1f1b", cfg, kWorld);
  (void)clean->train_iteration(data, 0);

  std::unique_ptr<Trainer> faulty = make_trainer("1f1b", cfg, kWorld);
  faulty->fabric()->install_fault_plan(
      comm::parse_fault_plan("stall:rank=0:op=5", 1));
  const RecoveryResult r = train_iteration_with_recovery(*faulty, data, 0);
  EXPECT_EQ(faulty->fabric()->fault_stats().stalls, 1u);
  EXPECT_GE(r.recoveries, 1);
  EXPECT_TRUE(
      bitwise_equal(clean->gather_block_params(),
                    faulty->gather_block_params()));
}

}  // namespace
}  // namespace weipipe
