// Trainer features: LR schedules, distributed global-norm gradient clipping,
// checkpoint round-trips (including cross-sharding restore), and generation.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "baselines/fsdp_trainer.hpp"
#include "baselines/pipeline_trainer.hpp"
#include "core/checkpoint.hpp"
#include "core/sequential_trainer.hpp"
#include "core/weipipe_trainer.hpp"
#include "nn/decode.hpp"
#include "nn/generate.hpp"

namespace weipipe {
namespace {

TrainConfig tiny_config() {
  TrainConfig cfg;
  cfg.model.vocab_size = 64;
  cfg.model.dim = 32;
  cfg.model.n_layers = 4;
  cfg.model.n_heads = 4;
  cfg.model.seq_len = 16;
  cfg.num_microbatches = 8;
  cfg.microbatch_size = 2;
  cfg.seq_len = 16;
  cfg.seed = 5150;
  return cfg;
}

float params_max_diff(const std::vector<std::vector<float>>& a,
                      const std::vector<std::vector<float>>& b) {
  EXPECT_EQ(a.size(), b.size());
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].size(), b[i].size());
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      m = std::max(m, std::fabs(a[i][j] - b[i][j]));
    }
  }
  return m;
}

// ---- LR schedule -----------------------------------------------------------------

TEST(LrSchedule, DisabledIsConstant) {
  LrSchedule sched;  // total_iters == 0
  EXPECT_EQ(sched.scale(0), 1.0f);
  EXPECT_EQ(sched.scale(1000), 1.0f);
}

TEST(LrSchedule, WarmupRampsLinearly) {
  LrSchedule sched;
  sched.warmup_iters = 10;
  sched.total_iters = 100;
  EXPECT_NEAR(sched.scale(0), 0.1f, 1e-6f);
  EXPECT_NEAR(sched.scale(4), 0.5f, 1e-6f);
  EXPECT_NEAR(sched.scale(9), 1.0f, 1e-6f);
}

TEST(LrSchedule, CosineDecaysToFloor) {
  LrSchedule sched;
  sched.warmup_iters = 0;
  sched.total_iters = 100;
  sched.min_lr_fraction = 0.1f;
  EXPECT_NEAR(sched.scale(0), 1.0f, 1e-6f);
  EXPECT_NEAR(sched.scale(50), 0.55f, 1e-3f);  // halfway through cosine
  EXPECT_NEAR(sched.scale(99), 0.1f, 1e-2f);
  EXPECT_EQ(sched.scale(100), 0.1f);
  EXPECT_EQ(sched.scale(10000), 0.1f);  // constant after total_iters
}

TEST(LrSchedule, MonotoneDuringDecay) {
  LrSchedule sched;
  sched.warmup_iters = 5;
  sched.total_iters = 50;
  for (std::int64_t i = 5; i + 1 < 50; ++i) {
    EXPECT_GE(sched.scale(i), sched.scale(i + 1));
  }
}

// ---- Gradient clipping ---------------------------------------------------------------

TEST(ClipScale, IdentityBelowThreshold) {
  ClipConfig clip{10.0f};
  EXPECT_EQ(clip_scale(clip, 4.0), 1.0f);  // norm 2 < 10
  EXPECT_EQ(clip_scale(ClipConfig{}, 1e12), 1.0f);  // disabled
}

TEST(ClipScale, ScalesAboveThreshold) {
  ClipConfig clip{1.0f};
  EXPECT_NEAR(clip_scale(clip, 4.0), 0.5f, 1e-6f);  // norm 2 -> scale 1/2
}

TEST(Clipping, SequentialClipChangesTrajectory) {
  TrainConfig cfg = tiny_config();
  SequentialTrainer plain(cfg);
  cfg.clip.max_norm = 1e-3f;  // aggressive, definitely binds
  SequentialTrainer clipped(cfg);
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  (void)plain.train_iteration(data, 0);
  (void)clipped.train_iteration(data, 0);
  EXPECT_GT(params_max_diff(plain.gather_block_params(),
                            clipped.gather_block_params()),
            0.0f);
}

TEST(Clipping, WeiPipeMatchesSequentialWithClip) {
  TrainConfig cfg = tiny_config();
  cfg.clip.max_norm = 0.05f;  // binds for this model
  SequentialTrainer ref(cfg);
  WeiPipeTrainer wp(cfg, 4);
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  for (int it = 0; it < 3; ++it) {
    (void)ref.train_iteration(data, it);
    (void)wp.train_iteration(data, it);
  }
  // The global-norm reduction sums per-shard doubles in a slightly different
  // association than sequential; allow a vanishing tolerance.
  EXPECT_LT(params_max_diff(ref.gather_block_params(),
                            wp.gather_block_params()),
            1e-6f);
}

TEST(Clipping, PipelineAndFsdpMatchSequentialWithClip) {
  TrainConfig cfg = tiny_config();
  cfg.clip.max_norm = 0.05f;
  SequentialTrainer ref(cfg);
  PipelineTrainer pipe(cfg, 4);
  FsdpTrainer fsdp(cfg, 4);
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  for (int it = 0; it < 2; ++it) {
    (void)ref.train_iteration(data, it);
    (void)pipe.train_iteration(data, it);
    (void)fsdp.train_iteration(data, it);
  }
  EXPECT_LT(params_max_diff(ref.gather_block_params(),
                            pipe.gather_block_params()),
            1e-6f);
  EXPECT_LT(params_max_diff(ref.gather_block_params(),
                            fsdp.gather_block_params()),
            3e-5f);  // FSDP's partial sums already carry float tolerance
}

TEST(Clipping, ReplicatedVocabClipMatchesSequential) {
  TrainConfig cfg = tiny_config();
  cfg.clip.max_norm = 0.05f;
  SequentialTrainer ref(cfg);
  WeiPipeTrainer wp(cfg, 4, {.replicate_vocab = true});
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  for (int it = 0; it < 2; ++it) {
    (void)ref.train_iteration(data, it);
    (void)wp.train_iteration(data, it);
  }
  // The replicated-vocab gradient reduction rounds differently from the
  // sequential trainer; the bound tracks observed drift with a margin
  // (~5.9e-6 with the tiled K-blocked GEMM's accumulation order).
  EXPECT_LT(params_max_diff(ref.gather_block_params(),
                            wp.gather_block_params()),
            1e-5f);
}

TEST(Scheduling, WeiPipeMatchesSequentialWithLrSchedule) {
  TrainConfig cfg = tiny_config();
  cfg.lr_schedule.warmup_iters = 2;
  cfg.lr_schedule.total_iters = 10;
  SequentialTrainer ref(cfg);
  WeiPipeTrainer wp(cfg, 4);
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  for (int it = 0; it < 4; ++it) {
    (void)ref.train_iteration(data, it);
    (void)wp.train_iteration(data, it);
  }
  EXPECT_EQ(params_max_diff(ref.gather_block_params(),
                            wp.gather_block_params()),
            0.0f);  // schedule is evaluated locally: still bitwise
}

// ---- Checkpointing ----------------------------------------------------------------------

class TempCheckpoint {
 public:
  TempCheckpoint() {
    path_ = (std::filesystem::temp_directory_path() /
             ("weipipe_ckpt_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter_++)))
                .string();
  }
  ~TempCheckpoint() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

TEST(Checkpoint, FileRoundTripIsExact) {
  const TrainConfig cfg = tiny_config();
  SequentialTrainer t(cfg);
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  (void)t.train_iteration(data, 0);
  const TrainerState state = t.export_state();

  TempCheckpoint ckpt;
  save_checkpoint(ckpt.path(), state);
  const TrainerState loaded = load_checkpoint(ckpt.path());

  EXPECT_EQ(loaded.step_count, state.step_count);
  ASSERT_EQ(loaded.block_params.size(), state.block_params.size());
  for (std::size_t b = 0; b < state.block_params.size(); ++b) {
    EXPECT_EQ(loaded.block_params[b], state.block_params[b]);
    EXPECT_EQ(loaded.adam_m[b], state.adam_m[b]);
    EXPECT_EQ(loaded.adam_v[b], state.adam_v[b]);
  }
}

TEST(Checkpoint, RejectsGarbageFiles) {
  TempCheckpoint ckpt;
  {
    std::FILE* f = std::fopen(ckpt.path().c_str(), "wb");
    std::fputs("definitely not a checkpoint", f);
    std::fclose(f);
  }
  EXPECT_THROW(load_checkpoint(ckpt.path()), Error);
  EXPECT_THROW(load_checkpoint("/nonexistent/dir/ckpt.bin"), Error);
}

TEST(Checkpoint, ResumeMatchesUninterruptedRun) {
  // Train 4 iterations straight vs 2 + checkpoint + restore + 2.
  const TrainConfig cfg = tiny_config();
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);

  SequentialTrainer straight(cfg);
  for (int it = 0; it < 4; ++it) {
    (void)straight.train_iteration(data, it);
  }

  TempCheckpoint ckpt;
  {
    SequentialTrainer first_half(cfg);
    (void)first_half.train_iteration(data, 0);
    (void)first_half.train_iteration(data, 1);
    save_checkpoint(ckpt.path(), first_half.export_state());
  }
  SequentialTrainer second_half(cfg);
  second_half.import_state(load_checkpoint(ckpt.path()));
  (void)second_half.train_iteration(data, 2);
  (void)second_half.train_iteration(data, 3);

  EXPECT_EQ(params_max_diff(straight.gather_block_params(),
                            second_half.gather_block_params()),
            0.0f);
}

TEST(Checkpoint, CrossShardingRestore) {
  // WeiPipe on 4 workers -> checkpoint -> restore into sequential AND into a
  // 2-worker ring; all three continue identically.
  const TrainConfig cfg = tiny_config();
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);

  WeiPipeTrainer origin(cfg, 4);
  (void)origin.train_iteration(data, 0);
  (void)origin.train_iteration(data, 1);
  const TrainerState state = origin.export_state();

  SequentialTrainer seq(cfg);
  seq.import_state(state);
  WeiPipeTrainer ring2(cfg, 2);
  ring2.import_state(state);

  (void)origin.train_iteration(data, 2);
  (void)seq.train_iteration(data, 2);
  (void)ring2.train_iteration(data, 2);

  EXPECT_EQ(params_max_diff(origin.gather_block_params(),
                            seq.gather_block_params()),
            0.0f);
  EXPECT_EQ(params_max_diff(origin.gather_block_params(),
                            ring2.gather_block_params()),
            0.0f);
}

TEST(Checkpoint, ReplicatedVocabRoundTrip) {
  // replicate_vocab trainers checkpoint/restore interchangeably with the
  // circulating layout and with sequential training.
  const TrainConfig cfg = tiny_config();
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  WeiPipeTrainer origin(cfg, 4, {.replicate_vocab = true});
  (void)origin.train_iteration(data, 0);
  const TrainerState state = origin.export_state();

  SequentialTrainer seq(cfg);
  seq.import_state(state);
  WeiPipeTrainer clone(cfg, 4, {.replicate_vocab = true});
  clone.import_state(state);

  (void)origin.train_iteration(data, 1);
  (void)seq.train_iteration(data, 1);
  (void)clone.train_iteration(data, 1);
  EXPECT_EQ(params_max_diff(origin.gather_block_params(),
                            clone.gather_block_params()),
            0.0f);
  EXPECT_LT(params_max_diff(origin.gather_block_params(),
                            seq.gather_block_params()),
            5e-6f);
}

TEST(Checkpoint, ImportRejectsWrongModel) {
  const TrainConfig cfg = tiny_config();
  SequentialTrainer t(cfg);
  TrainerState state = t.export_state();
  state.block_params.pop_back();
  state.adam_m.pop_back();
  state.adam_v.pop_back();
  SequentialTrainer other(cfg);
  EXPECT_THROW(other.import_state(state), Error);
}

// ---- Generation --------------------------------------------------------------------------

TEST(Generate, ProducesRequestedLengthInVocab) {
  const TrainConfig cfg = tiny_config();
  Model model(cfg.model);
  const auto params = model.init_block_params(cfg.seed);
  const std::vector<std::int32_t> prompt = {1, 2, 3};
  GenerateOptions opts;
  opts.max_new_tokens = 10;
  const auto out = generate(model, params, prompt, opts);
  ASSERT_EQ(out.size(), 13u);
  for (std::int32_t t : out) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, cfg.model.vocab_size);
  }
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[2], 3);
}

TEST(Generate, GreedyIsDeterministicSamplingIsSeeded) {
  const TrainConfig cfg = tiny_config();
  Model model(cfg.model);
  const auto params = model.init_block_params(cfg.seed);
  const std::vector<std::int32_t> prompt = {5};
  GenerateOptions greedy;
  greedy.max_new_tokens = 8;
  EXPECT_EQ(generate(model, params, prompt, greedy),
            generate(model, params, prompt, greedy));
  GenerateOptions sampled;
  sampled.max_new_tokens = 8;
  sampled.temperature = 1.0f;
  sampled.seed = 1;
  const auto a = generate(model, params, prompt, sampled);
  EXPECT_EQ(a, generate(model, params, prompt, sampled));
  sampled.seed = 2;
  // Different seed very likely differs at some position (untrained model,
  // near-uniform logits).
  EXPECT_NE(a, generate(model, params, prompt, sampled));
}

TEST(Generate, TrainedModelContinuesTheAffineLanguage) {
  // Train to (near-)memorize next = (a*cur + b) % V, then check that greedy
  // generation follows the recurrence from a seen context.
  TrainConfig cfg = tiny_config();
  cfg.model.vocab_size = 16;
  cfg.adam.lr = 5e-3f;
  cfg.num_microbatches = 8;
  WeiPipeTrainer trainer(cfg, 4);
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  for (int it = 0; it < 150; ++it) {
    (void)trainer.train_iteration(data, it);
  }
  Model model(cfg.model);
  const auto params = trainer.gather_block_params();

  // Take a training sequence prefix and ask the model to continue it.
  const Microbatch mb = data.make(0, 1, cfg.seq_len);
  const std::vector<std::int32_t> prompt(mb.tokens.begin(),
                                         mb.tokens.begin() + 8);
  GenerateOptions opts;
  opts.max_new_tokens = 6;
  const auto out = generate(model, params, prompt, opts);
  int correct = 0;
  for (std::size_t i = 8; i < out.size(); ++i) {
    if (out[i] == mb.tokens[i]) {
      ++correct;
    }
  }
  // Each sequence draws its own (a, b); a short context under-determines
  // them, so demand a clear majority rather than perfection.
  EXPECT_GE(correct, 3) << "model failed to learn the synthetic recurrence";
}

TEST(Decode, LogitsMatchFullForwardAtEveryPosition) {
  const TrainConfig cfg = tiny_config();
  Model model(cfg.model);
  const auto params = model.init_block_params(cfg.seed);
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  const Microbatch mb = data.make(0, 1, 8);

  // Reference: full-batch forward over the 8 tokens.
  std::vector<BlockCtx> ctxs;
  const Tensor full = model.forward_all(params, mb, ctxs);

  // Cached decoder fed token by token.
  Decoder decoder(model, params);
  for (std::int64_t i = 0; i < 8; ++i) {
    decoder.step(mb.tokens[static_cast<std::size_t>(i)]);
    const auto lg = decoder.logits();
    for (std::int64_t v = 0; v < cfg.model.vocab_size; ++v) {
      ASSERT_NEAR(lg[static_cast<std::size_t>(v)], full(i, v), 1e-4f)
          << "pos " << i << " vocab " << v;
    }
  }
}

TEST(Decode, CachedGenerateMatchesUncached) {
  const TrainConfig cfg = tiny_config();
  Model model(cfg.model);
  const auto params = model.init_block_params(cfg.seed);
  const std::vector<std::int32_t> prompt = {3, 1, 4};
  GenerateOptions opts;
  opts.max_new_tokens = 8;
  const auto slow = generate(model, params, prompt, opts);
  const auto fast = generate_cached(model, params, prompt, 8);
  EXPECT_EQ(slow, fast);  // greedy: identical token choices
}

TEST(Decode, CapacityEnforced) {
  const TrainConfig cfg = tiny_config();  // seq_len 16
  Model model(cfg.model);
  const auto params = model.init_block_params(cfg.seed);
  Decoder decoder(model, params);
  for (int i = 0; i < 16; ++i) {
    decoder.step(1);
  }
  EXPECT_THROW(decoder.step(1), Error);
  const std::vector<std::int32_t> prompt = {1, 2};
  EXPECT_THROW(generate_cached(model, params, prompt, 20), Error);
}

TEST(Decode, GqaModelDecodes) {
  TrainConfig cfg = tiny_config();
  cfg.model.n_kv_heads = 2;
  Model model(cfg.model);
  const auto params = model.init_block_params(cfg.seed);
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  const Microbatch mb = data.make(0, 1, 6);
  std::vector<BlockCtx> ctxs;
  const Tensor full = model.forward_all(params, mb, ctxs);
  Decoder decoder(model, params);
  for (std::int64_t i = 0; i < 6; ++i) {
    decoder.step(mb.tokens[static_cast<std::size_t>(i)]);
  }
  const auto lg = decoder.logits();
  for (std::int64_t v = 0; v < cfg.model.vocab_size; ++v) {
    ASSERT_NEAR(lg[static_cast<std::size_t>(v)], full(5, v), 1e-4f);
  }
}

TEST(Generate, RejectsBadPrompt) {
  const TrainConfig cfg = tiny_config();
  Model model(cfg.model);
  const auto params = model.init_block_params(cfg.seed);
  EXPECT_THROW(
      generate(model, params, std::vector<std::int32_t>{}, GenerateOptions{}),
      Error);
  EXPECT_THROW(generate(model, params, std::vector<std::int32_t>{999},
                        GenerateOptions{}),
               Error);
}

}  // namespace
}  // namespace weipipe
