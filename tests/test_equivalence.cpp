// The gold tests: every distributed strategy must reproduce sequential
// training exactly (fp32 wire) on the same seed/data, across shapes, modes,
// and worker counts. This is the semantic backbone of the whole library —
// if WeiPipe's weight circulation, gradient ring accumulation, or ownership
// algebra were wrong anywhere, weights would diverge within one iteration.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/fsdp_trainer.hpp"
#include "baselines/pipeline_trainer.hpp"
#include "core/sequential_trainer.hpp"
#include "common/check.hpp"
#include "core/weipipe_trainer.hpp"

namespace weipipe {
namespace {

TrainConfig tiny_config(std::int64_t layers = 4, std::int64_t n_mb = 4,
                        bool recompute = false, bool flash = true) {
  TrainConfig cfg;
  cfg.model.vocab_size = 64;
  cfg.model.dim = 32;
  cfg.model.n_layers = layers;
  cfg.model.n_heads = 4;
  cfg.model.seq_len = 16;
  cfg.model.flash_attention = flash;
  cfg.model.recompute = recompute;
  cfg.num_microbatches = n_mb;
  cfg.microbatch_size = 2;
  cfg.seq_len = 16;
  cfg.adam.lr = 1e-3f;
  cfg.seed = 99;
  return cfg;
}

// Max |a-b| across all blocks.
float params_max_diff(const std::vector<std::vector<float>>& a,
                      const std::vector<std::vector<float>>& b) {
  EXPECT_EQ(a.size(), b.size());
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].size(), b[i].size());
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      m = std::max(m, std::fabs(a[i][j] - b[i][j]));
    }
  }
  return m;
}

void expect_matches_sequential_tol(Trainer& candidate, const TrainConfig& cfg,
                                   int iters, float tol);

void expect_matches_sequential(Trainer& candidate, const TrainConfig& cfg,
                               int iters, float tol) {
  SequentialTrainer ref(cfg);
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  for (int it = 0; it < iters; ++it) {
    const IterationResult a = ref.train_iteration(data, it);
    const IterationResult b = candidate.train_iteration(data, it);
    EXPECT_NEAR(a.mean_loss, b.mean_loss, 1e-4f)
        << candidate.name() << " loss mismatch at iter " << it;
    const float diff =
        params_max_diff(ref.gather_block_params(),
                        candidate.gather_block_params());
    EXPECT_LE(diff, tol) << candidate.name() << " weights diverged at iter "
                         << it << " (max |diff| = " << diff << ")";
  }
}

void expect_matches_sequential_tol(Trainer& candidate, const TrainConfig& cfg,
                                   int iters, float tol) {
  expect_matches_sequential(candidate, cfg, iters, tol);
}

// ---- WeiPipe-Interleave ------------------------------------------------------

TEST(Equivalence, WeiPipeInterleaveMatchesSequentialExactly) {
  const TrainConfig cfg = tiny_config(/*layers=*/4, /*n_mb=*/8);
  WeiPipeTrainer t(cfg, /*num_workers=*/4);
  // fp32 wire + identical accumulation order => bitwise-equal weights.
  expect_matches_sequential(t, cfg, /*iters=*/3, /*tol=*/0.0f);
}

TEST(Equivalence, WeiPipeNaiveMatchesSequentialExactly) {
  const TrainConfig cfg = tiny_config(/*layers=*/4, /*n_mb=*/8);
  WeiPipeTrainer t(cfg, 4, {.mode = WeiPipeMode::kNaive});
  expect_matches_sequential(t, cfg, 3, 0.0f);
}

TEST(Equivalence, WeiPipeSingleRound) {
  // N == P: no steady-state interleave at all (pure fill+drain).
  const TrainConfig cfg = tiny_config(4, /*n_mb=*/4);
  WeiPipeTrainer t(cfg, 4);
  expect_matches_sequential(t, cfg, 2, 0.0f);
}

TEST(Equivalence, WeiPipeManyRounds) {
  const TrainConfig cfg = tiny_config(4, /*n_mb=*/12);
  WeiPipeTrainer t(cfg, 2);
  expect_matches_sequential(t, cfg, 2, 0.0f);
}

TEST(Equivalence, WeiPipeUnevenChunks) {
  // 5 layers over 3 workers: chunk sizes 2,2,1 (+embed, +head).
  const TrainConfig cfg = tiny_config(/*layers=*/5, /*n_mb=*/6);
  WeiPipeTrainer t(cfg, 3);
  expect_matches_sequential(t, cfg, 2, 0.0f);
}

TEST(Equivalence, WeiPipeWithRecompute) {
  const TrainConfig cfg = tiny_config(4, 8, /*recompute=*/true);
  WeiPipeTrainer t(cfg, 4);
  expect_matches_sequential(t, cfg, 2, 0.0f);
}

TEST(Equivalence, WeiPipeNaiveAttentionPath) {
  const TrainConfig cfg = tiny_config(4, 8, false, /*flash=*/false);
  WeiPipeTrainer t(cfg, 4);
  expect_matches_sequential(t, cfg, 2, 0.0f);
}

TEST(Equivalence, WeiPipeBlockingCommunication) {
  // async_prefetch off: same numerics, different overlap.
  const TrainConfig cfg = tiny_config(4, 8);
  WeiPipeTrainer t(cfg, 4, {.async_prefetch = false});
  expect_matches_sequential(t, cfg, 2, 0.0f);
}

TEST(Equivalence, WeiPipeHybridDataParallelMatchesSequential) {
  // 2 rings x 2 replicas = 4 workers; cross-replica gradient chain-reduce.
  const TrainConfig cfg = tiny_config(/*layers=*/4, /*n_mb=*/8);
  WeiPipeTrainer t(cfg, /*num_workers=*/2, {.dp_degree = 2});
  // Replica partial sums associate differently than the sequential chain:
  // tolerance instead of bitwise.
  expect_matches_sequential_tol(t, cfg, /*iters=*/3, /*tol=*/5e-6f);
}

TEST(Equivalence, WeiPipeHybridThreeReplicas) {
  const TrainConfig cfg = tiny_config(/*layers=*/4, /*n_mb=*/12);
  WeiPipeTrainer t(cfg, 2, {.dp_degree = 3});
  expect_matches_sequential_tol(t, cfg, 2, 5e-6f);
}

TEST(Equivalence, GroupedQueryAttentionMatchesSequentialExactly) {
  // GQA (fewer kv heads) through the whole distributed stack.
  TrainConfig cfg = tiny_config(4, 8);
  cfg.model.n_kv_heads = 2;  // 4 query heads sharing 2 kv heads
  WeiPipeTrainer t(cfg, 4);
  expect_matches_sequential(t, cfg, 2, 0.0f);
}

TEST(Equivalence, GqaShrinksLayerParameters) {
  ModelConfig mha;
  mha.dim = 64;
  mha.n_heads = 8;
  ModelConfig gqa = mha;
  gqa.n_kv_heads = 2;
  EXPECT_LT(TransformerLayerBlock(gqa).param_count(),
            TransformerLayerBlock(mha).param_count());
}

TEST(Equivalence, ReplicatedVocabMatchesSequential) {
  // Production vocab handling: embedding/head replicated per worker, synced
  // once per iteration. Vocab gradients sum in rank order (not microbatch
  // order), so tolerance instead of bitwise.
  const TrainConfig cfg = tiny_config(/*layers=*/4, /*n_mb=*/8);
  WeiPipeTrainer t(cfg, 4, {.replicate_vocab = true});
  expect_matches_sequential_tol(t, cfg, /*iters=*/3, /*tol=*/5e-6f);
}

TEST(Equivalence, ReplicatedVocabWithHybridDp) {
  const TrainConfig cfg = tiny_config(4, 8);
  WeiPipeTrainer t(cfg, 2, {.dp_degree = 2, .replicate_vocab = true});
  expect_matches_sequential_tol(t, cfg, 2, 5e-6f);
}

TEST(Equivalence, ReplicatedVocabCutsWireBytes) {
  // With a vocabulary dwarfing the layers, not circulating V*H every turn
  // must slash fabric traffic.
  TrainConfig cfg = tiny_config(4, 8);
  cfg.model.vocab_size = 2048;  // emb+head ~ 2 * 2048 * 32 params
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  WeiPipeTrainer circulating(cfg, 4);
  WeiPipeTrainer replicated(cfg, 4, {.replicate_vocab = true});
  const std::uint64_t bytes_circ =
      circulating.train_iteration(data, 0).wire_bytes;
  const std::uint64_t bytes_repl =
      replicated.train_iteration(data, 0).wire_bytes;
  EXPECT_LT(bytes_repl, bytes_circ / 2);
}

TEST(Equivalence, WeiPipeHybridRejectsBadDivisibility) {
  const TrainConfig cfg = tiny_config(4, 8);
  EXPECT_THROW(WeiPipeTrainer(cfg, 3, {.dp_degree = 2}), Error);
}

// ---- Activation-passing pipelines ---------------------------------------------

TEST(Equivalence, Pipeline1F1BMatchesSequentialExactly) {
  const TrainConfig cfg = tiny_config(4, 8);
  PipelineTrainer t(cfg, 4, {.mode = PipelineMode::k1F1B});
  expect_matches_sequential(t, cfg, 3, 0.0f);
}

TEST(Equivalence, PipelineGPipeMatchesSequentialExactly) {
  const TrainConfig cfg = tiny_config(4, 8);
  PipelineTrainer t(cfg, 4, {.mode = PipelineMode::kGPipe});
  expect_matches_sequential(t, cfg, 3, 0.0f);
}

TEST(Equivalence, Pipeline1F1BMoreMicrobatchesThanDouble) {
  const TrainConfig cfg = tiny_config(4, 16);
  PipelineTrainer t(cfg, 4);
  expect_matches_sequential(t, cfg, 2, 0.0f);
}

// ---- FSDP ---------------------------------------------------------------------

TEST(Equivalence, FsdpMatchesSequentialClosely) {
  // FSDP sums per-rank partials (different association order than
  // sequential), so allow a small float tolerance.
  const TrainConfig cfg = tiny_config(4, 8);
  FsdpTrainer t(cfg, 4);
  expect_matches_sequential(t, cfg, 3, 2e-5f);
}

TEST(Equivalence, FsdpTwoRanks) {
  const TrainConfig cfg = tiny_config(4, 8);
  FsdpTrainer t(cfg, 2);
  expect_matches_sequential(t, cfg, 2, 2e-5f);
}

// ---- Mixed precision (paper mode) ----------------------------------------------

TEST(Equivalence, WeiPipePaperPrecisionStillLearns) {
  TrainConfig cfg = tiny_config(4, 8);
  cfg.precision = PrecisionConfig::paper();
  cfg.adam.lr = 3e-3f;
  WeiPipeTrainer t(cfg, 4);
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  // Losses are noisy across iterations (fresh microbatches each time), so
  // compare a head window against a tail window.
  std::vector<float> losses;
  for (int it = 0; it < 30; ++it) {
    losses.push_back(t.train_iteration(data, it).mean_loss);
  }
  auto mean_of = [&](std::size_t begin, std::size_t end) {
    double s = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      s += losses[i];
    }
    return s / static_cast<double>(end - begin);
  };
  const double head = mean_of(0, 5);
  const double tail = mean_of(losses.size() - 5, losses.size());
  EXPECT_LT(tail, head - 0.02)
      << "fp16 circulation should still converge (head=" << head
      << ", tail=" << tail << ")";
}

TEST(Equivalence, WeiPipeFp16CloseToFp32) {
  TrainConfig cfg16 = tiny_config(4, 8);
  cfg16.precision = PrecisionConfig::paper();
  TrainConfig cfg32 = tiny_config(4, 8);
  WeiPipeTrainer t16(cfg16, 4);
  WeiPipeTrainer t32(cfg32, 4);
  SyntheticDataset data(cfg16.model.vocab_size, cfg16.seed);
  for (int it = 0; it < 3; ++it) {
    const IterationResult a = t16.train_iteration(data, it);
    const IterationResult b = t32.train_iteration(data, it);
    EXPECT_NEAR(a.mean_loss, b.mean_loss, 5e-2f);
  }
  // Half-precision circulation costs half the wire bytes.
  const float diff = params_max_diff(t16.gather_block_params(),
                                     t32.gather_block_params());
  EXPECT_LT(diff, 5e-2f);
}

}  // namespace
}  // namespace weipipe
