// Live health plane: flight-recorder ring semantics, watchdog verdicts
// (stall attribution, dead detection, straggler scoring), and the post-mortem
// black box (dump schema, span-timeline JSON round trip through the Perfetto
// exporter). Mirrors the acceptance criteria: an injected stall must be
// judged STALLED naming the correct blocked-on peer, a clean run must be
// all-OK with zero dropped flight-ring entries, and a forced abort must
// produce a parseable postmortem.json whose span timeline round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/factory.hpp"
#include "comm/fabric.hpp"
#include "comm/fault.hpp"
#include "core/resilience.hpp"
#include "nn/microbatch.hpp"
#include "obs/blackbox.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/health.hpp"
#include "obs/json.hpp"
#include "obs/recorder.hpp"
#include "obs/span.hpp"

namespace weipipe {
namespace {

TrainConfig tiny_config() {
  TrainConfig cfg;
  cfg.model.vocab_size = 32;
  cfg.model.dim = 16;
  cfg.model.n_layers = 4;
  cfg.model.n_heads = 2;
  cfg.model.seq_len = 8;
  cfg.num_microbatches = 4;
  cfg.microbatch_size = 1;
  cfg.seq_len = 8;
  cfg.seed = 2024;
  return cfg;
}

constexpr std::int64_t kWorld = 4;

std::string read_file(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "cannot read " << path.string();
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

// ---- flight recorder --------------------------------------------------------

// The flight-recorder mode keeps the most recent spans (overwrite-oldest),
// the inverse of the default drop-new profiling policy pinned by test_obs.
TEST(FlightRecorder, OverwriteOldestKeepsMostRecentSpans) {
  obs::Recorder recorder({.ring_capacity = 16, .overwrite_oldest = true});
  recorder.install();
  {
    obs::RankScope rank_scope(0);
    for (int i = 0; i < 50; ++i) {
      obs::SpanScope scope(obs::SpanKind::kForward, i, 0);
    }
  }
  const std::vector<obs::Span> spans = recorder.drain();
  ASSERT_EQ(spans.size(), 16u);
  // Every evicted span is still accounted for.
  EXPECT_EQ(recorder.dropped(), 34u);
  // The ring kept the newest spans — the moments before a wedge.
  EXPECT_EQ(spans.front().microbatch, 34);
  EXPECT_EQ(spans.back().microbatch, 49);
  const std::vector<obs::Recorder::RankDropped> by_rank =
      recorder.dropped_by_rank();
  ASSERT_EQ(by_rank.size(), 1u);
  EXPECT_EQ(by_rank[0].rank, 0);
  EXPECT_EQ(by_rank[0].dropped, 34u);
  recorder.uninstall();
}

// ---- span-timeline JSON -----------------------------------------------------

// Synthetic spans exercise every field; the JSON round trip must be exact
// and the reconstructed spans must re-export byte-identically through the
// Chrome-trace writer (timestamps included, which is why they are synthetic:
// the comparison is deterministic).
TEST(BlackBoxJson, SpanTimelineRoundTripIsExact) {
  std::vector<obs::Span> spans;
  obs::Span compute;
  compute.start_ns = 1'000;
  compute.end_ns = 5'000;
  compute.kind = obs::SpanKind::kBackwardActs;
  compute.rank = 2;
  compute.microbatch = 7;
  compute.chunk = 3;
  compute.bytes = -4096;
  compute.act_bytes_after = 123456.0;
  spans.push_back(compute);
  obs::Span comm;
  comm.start_ns = 2'500;
  comm.end_ns = 2'600;
  comm.kind = obs::SpanKind::kRecvWait;
  comm.rank = 0;
  comm.peer = 3;
  comm.tag = 5;
  comm.bytes = 8192;
  comm.flow_id = 42;
  spans.push_back(comm);
  obs::Span labeled;
  labeled.start_ns = 3'000;
  labeled.end_ns = 3'700;
  labeled.kind = obs::SpanKind::kCollective;
  labeled.rank = 1;
  labeled.label = "all-reduce";
  spans.push_back(labeled);

  const std::string json = obs::spans_to_json(spans);
  const obs::JsonParseResult parsed = obs::parse_json(json);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const std::vector<obs::Span> back = obs::spans_from_json(parsed.value);
  ASSERT_EQ(back.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(back[i].start_ns, spans[i].start_ns) << i;
    EXPECT_EQ(back[i].end_ns, spans[i].end_ns) << i;
    EXPECT_EQ(back[i].kind, spans[i].kind) << i;
    EXPECT_EQ(back[i].rank, spans[i].rank) << i;
    EXPECT_EQ(back[i].microbatch, spans[i].microbatch) << i;
    EXPECT_EQ(back[i].chunk, spans[i].chunk) << i;
    EXPECT_EQ(back[i].peer, spans[i].peer) << i;
    EXPECT_EQ(back[i].tag, spans[i].tag) << i;
    EXPECT_EQ(back[i].bytes, spans[i].bytes) << i;
    EXPECT_EQ(back[i].flow_id, spans[i].flow_id) << i;
    EXPECT_EQ(back[i].act_bytes_after, spans[i].act_bytes_after) << i;
  }
  ASSERT_NE(back[2].label, nullptr);
  EXPECT_STREQ(back[2].label, "all-reduce");
  // Second-generation JSON is byte-identical (the round trip is lossless),
  // and so is the Perfetto export of the reconstructed timeline.
  EXPECT_EQ(obs::spans_to_json(back), json);
  EXPECT_EQ(obs::spans_to_chrome_trace(back),
            obs::spans_to_chrome_trace(spans));
}

TEST(BlackBoxJson, MalformedSpanTimelineThrows) {
  const obs::JsonParseResult not_array = obs::parse_json("{\"a\": 1}");
  ASSERT_TRUE(not_array.ok);
  EXPECT_THROW((void)obs::spans_from_json(not_array.value), Error);
  const obs::JsonParseResult bad_kind =
      obs::parse_json("[{\"kind\": \"no-such-kind\"}]");
  ASSERT_TRUE(bad_kind.ok);
  EXPECT_THROW((void)obs::spans_from_json(bad_kind.value), Error);
  const obs::JsonParseResult missing_kind =
      obs::parse_json("[{\"start_ns\": 1}]");
  ASSERT_TRUE(missing_kind.ok);
  EXPECT_THROW((void)obs::spans_from_json(missing_kind.value), Error);
}

// ---- straggler scoring ------------------------------------------------------

TEST(HealthBoard, StragglerScoringFlagsTheSlowRank) {
  obs::HealthBoard& board = obs::health();
  board.reset(4);
  board.set_enabled(true);
  // Three tight ranks at ~10ms, one at 40ms: well past both the z-score and
  // the min-ratio gate.
  for (int sample = 0; sample < 6; ++sample) {
    board.record_step_duration(0, 10'000'000 + sample * 10'000);
    board.record_step_duration(1, 10'100'000 + sample * 10'000);
    board.record_step_duration(2, 9'900'000 + sample * 10'000);
    board.record_step_duration(3, 40'000'000 + sample * 10'000);
  }
  const obs::HealthReport report = obs::snapshot_health();
  ASSERT_EQ(report.ranks.size(), 4u);
  EXPECT_EQ(report.ranks[0].health, obs::RankHealth::kOk);
  EXPECT_EQ(report.ranks[1].health, obs::RankHealth::kOk);
  EXPECT_EQ(report.ranks[2].health, obs::RankHealth::kOk);
  EXPECT_EQ(report.ranks[3].health, obs::RankHealth::kSlow);
  EXPECT_GT(report.ranks[3].straggler_z, 3.0);
  EXPECT_EQ(report.count(obs::RankHealth::kSlow), 1);
  EXPECT_FALSE(report.all_ok());
  board.set_enabled(false);
}

TEST(HealthBoard, TightlyClusteredRanksAreNotFlagged) {
  obs::HealthBoard& board = obs::health();
  board.reset(4);
  board.set_enabled(true);
  // Sub-1.5x spread: the min-ratio guard must keep everything OK even
  // though the relative z-score of the slowest rank can be large.
  for (int sample = 0; sample < 6; ++sample) {
    for (int rank = 0; rank < 4; ++rank) {
      board.record_step_duration(rank, 10'000'000 + rank * 200'000);
    }
  }
  const obs::HealthReport report = obs::snapshot_health();
  ASSERT_EQ(report.ranks.size(), 4u);
  EXPECT_TRUE(report.all_ok()) << report.one_line();
  board.set_enabled(false);
}

// ---- acceptance (b): clean run ----------------------------------------------

TEST(HealthPlane, CleanRunIsAllOkWithZeroDroppedSpans) {
  obs::Recorder recorder(
      {.ring_capacity = 1 << 16, .overwrite_oldest = true});
  recorder.install();
  obs::Watchdog watchdog({.poll_seconds = 0.02});
  watchdog.start(static_cast<int>(kWorld));

  const TrainConfig cfg = tiny_config();
  std::unique_ptr<Trainer> trainer = make_trainer("weipipe", cfg, kWorld);
  const SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  for (std::int64_t i = 0; i < 2; ++i) {
    (void)trainer->train_iteration(data, i);
  }

  const obs::HealthReport report = watchdog.evaluate_now();
  watchdog.stop();
  EXPECT_TRUE(report.all_ok()) << report.one_line();
  ASSERT_EQ(report.ranks.size(), static_cast<std::size_t>(kWorld));
  for (const obs::RankStatus& st : report.ranks) {
    EXPECT_EQ(st.health, obs::RankHealth::kOk) << "rank " << st.rank;
    EXPECT_GT(st.steps, 0) << "rank " << st.rank;
    EXPECT_FALSE(st.waiting) << "rank " << st.rank;
    EXPECT_FALSE(st.last_error.present) << "rank " << st.rank;
  }
  EXPECT_EQ(report.job_step, 1);
  EXPECT_GT(report.job_mean_step_seconds, 0.0);
  // No verdict ever left OK, and the flight ring never overflowed.
  EXPECT_TRUE(watchdog.transitions().empty());
  EXPECT_GT(recorder.drain().size(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_TRUE(recorder.dropped_by_rank().empty());
  recorder.uninstall();
  // The report serializes to valid JSON.
  const obs::JsonParseResult parsed = obs::parse_json(report.to_json());
  EXPECT_TRUE(parsed.ok) << parsed.error;
}

// ---- acceptance (a): injected stall -----------------------------------------

// A held stall freezes rank 1 mid-iteration. Within the watchdog timeout the
// ring neighbors must be judged STALLED with ring-edge attribution naming
// the peer they are blocked on, the frozen rank itself (which publishes no
// heartbeat at all) must be judged DEAD, and the iteration must surface the
// structured CommError once the hold expires.
TEST(HealthPlane, InjectedStallIsJudgedStalledNamingTheBlockedPeer) {
  obs::WatchdogOptions wd;
  wd.poll_seconds = 0.02;
  wd.stall_timeout_seconds = 0.15;
  wd.dead_timeout_seconds = 0.35;
  obs::Watchdog watchdog(wd);
  watchdog.start(static_cast<int>(kWorld));

  const TrainConfig cfg = tiny_config();
  std::unique_ptr<Trainer> trainer = make_trainer("weipipe", cfg, kWorld);
  ASSERT_NE(trainer->fabric(), nullptr);
  trainer->fabric()->install_fault_plan(
      comm::parse_fault_plan("stall:rank=1:op=25:ms=900", 5));
  const SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  EXPECT_THROW((void)trainer->train_iteration(data, 0), comm::CommError);

  const std::vector<obs::HealthTransition> transitions =
      watchdog.transitions();
  watchdog.stop();
  bool stalled_on_frozen_rank = false;
  bool frozen_rank_dead = false;
  for (const obs::HealthTransition& t : transitions) {
    if (t.to == obs::RankHealth::kStalled) {
      EXPECT_NE(t.rank, 1) << "the frozen rank publishes no wait";
      EXPECT_GE(t.blocked_on_peer, 0)
          << "a STALLED verdict must name the blocking peer";
      if (t.blocked_on_peer == 1) {
        stalled_on_frozen_rank = true;
      }
    }
    if (t.to == obs::RankHealth::kDead) {
      EXPECT_EQ(t.rank, 1);
      frozen_rank_dead = true;
    }
  }
  EXPECT_TRUE(stalled_on_frozen_rank)
      << "no rank was attributed as blocked on the frozen rank 1 ("
      << transitions.size() << " transitions)";
  EXPECT_TRUE(frozen_rank_dead);
}

// ---- acceptance (c): forced abort dumps a parseable black box ---------------

TEST(HealthPlane, ForcedAbortProducesParseableRoundTrippablePostmortem) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "weipipe-postmortem-test";
  fs::remove_all(dir);

  obs::BlackBoxOptions box_opt;
  box_opt.dir = dir.string();
  obs::BlackBox blackbox(box_opt);
  blackbox.arm();
  blackbox.set_section("config", [] { return std::string("{\"test\": 1}"); });

  obs::Recorder recorder(
      {.ring_capacity = 1 << 12, .overwrite_oldest = true});
  recorder.install();

  const TrainConfig cfg = tiny_config();
  std::unique_ptr<Trainer> trainer = make_trainer("weipipe", cfg, kWorld);
  ASSERT_NE(trainer->fabric(), nullptr);
  trainer->fabric()->install_fault_plan(
      comm::parse_fault_plan("stall:rank=1:op=25", 5));
  const SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  // One recovery attempt: the first CommError is fatal and must dump.
  RecoveryOptions recovery;
  recovery.max_attempts = 1;
  EXPECT_THROW(
      (void)train_iteration_with_recovery(*trainer, data, 0, recovery),
      comm::CommError);
  recorder.uninstall();
  EXPECT_EQ(blackbox.dumps(), 1u);
  // Cascading failures do not dump twice.
  EXPECT_EQ(obs::blackbox_dump_once("second failure"), "");
  EXPECT_EQ(blackbox.dumps(), 1u);
  blackbox.disarm();

  // The dump parses, has the expected shape, and its span timeline
  // round-trips through the Perfetto exporter byte-identically with the
  // trace file written at dump time.
  const std::string dump_json = read_file(dir / "postmortem.json");
  const obs::JsonParseResult parsed = obs::parse_json(dump_json);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const obs::JsonValue* schema = parsed.value.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_number(), 1.0);
  const obs::JsonValue* reason = parsed.value.find("reason");
  ASSERT_NE(reason, nullptr);
  EXPECT_NE(reason->as_string().find("unrecovered comm error"),
            std::string::npos)
      << reason->as_string();
  ASSERT_NE(parsed.value.find("health"), nullptr);
  const obs::JsonValue* config = parsed.value.find("config");
  ASSERT_NE(config, nullptr) << "registered section missing";
  const obs::JsonValue* spans_value = parsed.value.find("spans");
  ASSERT_NE(spans_value, nullptr);
  const std::vector<obs::Span> spans = obs::spans_from_json(*spans_value);
  EXPECT_GT(spans.size(), 0u) << "flight ring was empty at dump time";
  const std::string trace = read_file(dir / "postmortem_trace.json");
  EXPECT_EQ(obs::spans_to_chrome_trace(spans), trace);
  const obs::JsonParseResult trace_parsed = obs::parse_json(trace);
  EXPECT_TRUE(trace_parsed.ok) << trace_parsed.error;

  fs::remove_all(dir);
}

// A CHECK failure is a dump trigger too (the observer hook in common/check).
TEST(HealthPlane, CheckFailureTriggersTheBlackBox) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "weipipe-postmortem-check";
  fs::remove_all(dir);
  obs::BlackBoxOptions box_opt;
  box_opt.dir = dir.string();
  obs::BlackBox blackbox(box_opt);
  blackbox.arm();
  EXPECT_THROW(WEIPIPE_CHECK_MSG(false, "forced for the black box"), Error);
  EXPECT_EQ(blackbox.dumps(), 1u);
  const std::string dump_json = read_file(dir / "postmortem.json");
  const obs::JsonParseResult parsed = obs::parse_json(dump_json);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const obs::JsonValue* reason = parsed.value.find("reason");
  ASSERT_NE(reason, nullptr);
  EXPECT_NE(reason->as_string().find("check-failure"), std::string::npos);
  blackbox.disarm();
  // Disarmed: CHECK failures throw without dumping.
  EXPECT_THROW(WEIPIPE_CHECK_MSG(false, "no box armed"), Error);
  EXPECT_EQ(blackbox.dumps(), 1u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace weipipe
