// Fabric + wire + collectives: P2P semantics (ordering, tags, async),
// ring collectives vs reference reductions, link-model delays, byte counters.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "comm/collectives.hpp"
#include "comm/fabric.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"

// Sanitizer instrumentation inflates wall time ~10x, so timing assertions
// need proportionally larger modeled delays to stay margins rather than
// races against scheduler noise.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define WEIPIPE_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define WEIPIPE_TEST_SANITIZED 1
#endif
#endif

namespace weipipe::comm {
namespace {

TEST(Wire, PackUnpackRoundTripFp32) {
  std::vector<float> values = {1.0f, -2.5f, 3.14159f, 0.0f};
  const auto bytes = pack_floats(values, WirePrecision::Fp32);
  EXPECT_EQ(bytes.size(), 16u);
  std::vector<float> out(4);
  unpack_floats(bytes, WirePrecision::Fp32, out);
  EXPECT_EQ(out, values);
}

TEST(Wire, PackFp16QuantizesOnce) {
  std::vector<float> values = {1.0009766f};  // needs rounding in fp16
  const auto bytes = pack_floats(values, WirePrecision::Fp16);
  EXPECT_EQ(bytes.size(), 2u);
  std::vector<float> out(1);
  unpack_floats(bytes, WirePrecision::Fp16, out);
  EXPECT_EQ(out[0], quantize_f16(values[0]));
}

TEST(Wire, SizeMismatchThrows) {
  std::vector<std::uint8_t> bytes(6);
  std::vector<float> out(2);  // needs 8 bytes in fp32
  EXPECT_THROW(unpack_floats(bytes, WirePrecision::Fp32, out), Error);
}

TEST(Fabric, BasicSendRecv) {
  Fabric fabric(2);
  std::thread t([&] {
    fabric.endpoint(1).send(0, 7, {1, 2, 3});
  });
  const auto msg = fabric.endpoint(0).recv(1, 7);
  t.join();
  EXPECT_EQ(msg, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Fabric, FifoOrderPerTag) {
  Fabric fabric(2);
  Endpoint& sender = fabric.endpoint(1);
  for (std::uint8_t i = 0; i < 10; ++i) {
    sender.send(0, 1, {i});
  }
  for (std::uint8_t i = 0; i < 10; ++i) {
    EXPECT_EQ(fabric.endpoint(0).recv(1, 1)[0], i);
  }
}

TEST(Fabric, TagsIsolateStreams) {
  Fabric fabric(2);
  Endpoint& sender = fabric.endpoint(1);
  sender.send(0, 2, {22});
  sender.send(0, 1, {11});
  // Receive in the opposite order of sending: tags keep streams apart.
  EXPECT_EQ(fabric.endpoint(0).recv(1, 1)[0], 11);
  EXPECT_EQ(fabric.endpoint(0).recv(1, 2)[0], 22);
}

TEST(Fabric, IrecvCompletesAfterWait) {
  Fabric fabric(2);
  std::vector<std::uint8_t> out;
  Request req = fabric.endpoint(0).irecv(1, 3, &out);
  EXPECT_TRUE(req.valid());
  fabric.endpoint(1).send(0, 3, {42});
  req.wait();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42);
}

TEST(Fabric, SelfSendRejected) {
  Fabric fabric(2);
  EXPECT_THROW(fabric.endpoint(0).send(0, 1, {1}), Error);
  EXPECT_THROW(fabric.endpoint(0).send(5, 1, {1}), Error);
}

TEST(Fabric, RecvTimeoutDetectsDeadlock) {
  Fabric fabric(2);
  fabric.set_recv_timeout(std::chrono::milliseconds(50));
  EXPECT_THROW(fabric.endpoint(0).recv(1, 9), Error);
}

TEST(Fabric, ByteCountersTrackTraffic) {
  Fabric fabric(3);
  fabric.endpoint(0).send(1, 1, std::vector<std::uint8_t>(100));
  fabric.endpoint(0).send(2, 1, std::vector<std::uint8_t>(50));
  fabric.endpoint(2).send(1, 1, std::vector<std::uint8_t>(7));
  EXPECT_EQ(fabric.bytes_sent(0, 1), 100u);
  EXPECT_EQ(fabric.bytes_sent(0, 2), 50u);
  EXPECT_EQ(fabric.bytes_sent(2, 1), 7u);
  EXPECT_EQ(fabric.total_bytes(), 157u);
  EXPECT_EQ(fabric.total_messages(), 3u);
  fabric.reset_stats();
  EXPECT_EQ(fabric.total_bytes(), 0u);
}

TEST(Fabric, LinkModelDelaysDelivery) {
#ifdef WEIPIPE_TEST_SANITIZED
  // 1 MB at 2 MB/s => ~500 ms in flight: same invariant, wider margins.
  const double bandwidth = 2e6;
  const double eager_bound = 0.25, delivery_floor = 0.4;
#else
  // 1 MB at 10 MB/s => ~100 ms in flight; sender must not block.
  const double bandwidth = 10e6;
  const double eager_bound = 0.05, delivery_floor = 0.08;
#endif
  Fabric fabric(2, uniform_link(bandwidth, 0.0));
  Stopwatch sw;
  fabric.endpoint(0).send(1, 1, std::vector<std::uint8_t>(1 << 20));
  EXPECT_LT(sw.seconds(), eager_bound);  // eager send returns immediately
  (void)fabric.endpoint(1).recv(0, 1);
  EXPECT_GE(sw.seconds(), delivery_floor);  // delivery honors the bandwidth
}

TEST(Fabric, SendFloatsQuantizesOnWire) {
  Fabric fabric(2);
  std::vector<float> values = {1.0009766f, -3.3333f};
  fabric.endpoint(0).send_floats(1, 1, values, WirePrecision::Fp16);
  std::vector<float> out(2);
  fabric.endpoint(1).recv_floats(0, 1, out, WirePrecision::Fp16);
  EXPECT_EQ(out[0], quantize_f16(values[0]));
  EXPECT_EQ(out[1], quantize_f16(values[1]));
  EXPECT_EQ(fabric.bytes_sent(0, 1), 4u);  // 2 elements x 2 bytes
}

TEST(RunWorkers, PropagatesFirstException) {
  Fabric fabric(3);
  fabric.set_recv_timeout(std::chrono::milliseconds(100));
  EXPECT_THROW(run_workers(fabric,
                           [](int rank, Endpoint&) {
                             if (rank == 1) {
                               WEIPIPE_CHECK_MSG(false, "rank 1 fails");
                             }
                           }),
               Error);
}

TEST(Fabric, IrecvFloatsUnpacksOnWait) {
  Fabric fabric(2);
  std::vector<float> out(3, 0.0f);
  Request req = fabric.endpoint(0).irecv_floats(
      1, 5, std::span<float>(out.data(), out.size()), WirePrecision::Fp16);
  std::vector<float> values = {1.0f, -2.0f, 0.5f};
  fabric.endpoint(1).send_floats(0, 5, values, WirePrecision::Fp16);
  req.wait();
  EXPECT_EQ(out, values);  // exactly representable in fp16
}

TEST(Fabric, BatchIsendIrecvRoundTrip) {
  Fabric fabric(3);
  std::vector<std::vector<float>> got(3);
  run_workers(fabric, [&](int rank, Endpoint& ep) {
    const int next = (rank + 1) % 3;
    const int prev = (rank + 2) % 3;
    std::vector<float> payload = {static_cast<float>(rank),
                                  static_cast<float>(rank * 2)};
    std::vector<float> inbox(2);
    const SendSpec sends[] = {
        {next, 9, std::span<const float>(payload.data(), payload.size()),
         WirePrecision::Fp32}};
    const RecvSpec recvs[] = {
        {prev, 9, std::span<float>(inbox.data(), inbox.size()),
         WirePrecision::Fp32}};
    auto reqs = batch_isend_irecv(ep, sends, recvs);
    for (Request& r : reqs) {
      r.wait();
    }
    got[static_cast<std::size_t>(rank)] = inbox;
  });
  for (int rank = 0; rank < 3; ++rank) {
    const int prev = (rank + 2) % 3;
    EXPECT_EQ(got[static_cast<std::size_t>(rank)][0],
              static_cast<float>(prev));
    EXPECT_EQ(got[static_cast<std::size_t>(rank)][1],
              static_cast<float>(prev * 2));
  }
}

TEST(Collectives, ScalarAllReduceSumsDeterministically) {
  for (int p : {1, 2, 3, 5, 8}) {
    Fabric fabric(p);
    std::vector<double> results(static_cast<std::size_t>(p), 0.0);
    run_workers(fabric, [&](int rank, Endpoint& ep) {
      results[static_cast<std::size_t>(rank)] =
          ring_all_reduce_scalar(ep, static_cast<double>(rank) + 0.5);
    });
    const double expected = p * (p - 1) / 2.0 + 0.5 * p;
    for (double r : results) {
      EXPECT_DOUBLE_EQ(r, expected) << "p=" << p;
    }
  }
}

// ---- Collectives -----------------------------------------------------------------

class CollectiveWorlds : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveWorlds, AllGatherCollectsEveryShard) {
  const int p = GetParam();
  Fabric fabric(p);
  const std::size_t n = 5;
  std::vector<std::vector<float>> results(static_cast<std::size_t>(p));
  run_workers(fabric, [&](int rank, Endpoint& ep) {
    std::vector<float> shard(n, static_cast<float>(rank + 1));
    std::vector<float> full(n * static_cast<std::size_t>(p), -1.0f);
    ring_all_gather(ep, shard, full, WirePrecision::Fp32);
    results[static_cast<std::size_t>(rank)] = full;
  });
  for (int r = 0; r < p; ++r) {
    for (int owner = 0; owner < p; ++owner) {
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(results[static_cast<std::size_t>(r)]
                         [static_cast<std::size_t>(owner) * n + i],
                  static_cast<float>(owner + 1))
            << "rank " << r << " owner " << owner;
      }
    }
  }
}

TEST_P(CollectiveWorlds, ReduceScatterSumsShards) {
  const int p = GetParam();
  Fabric fabric(p);
  const std::size_t n = 4;
  // full[owner*n + i] contributed by rank r = r*100 + owner*10 + i.
  std::vector<std::vector<float>> results(static_cast<std::size_t>(p));
  run_workers(fabric, [&](int rank, Endpoint& ep) {
    std::vector<float> full(n * static_cast<std::size_t>(p));
    for (int owner = 0; owner < p; ++owner) {
      for (std::size_t i = 0; i < n; ++i) {
        full[static_cast<std::size_t>(owner) * n + i] =
            static_cast<float>(rank * 100 + owner * 10 + static_cast<int>(i));
      }
    }
    std::vector<float> shard(n);
    ring_reduce_scatter(ep, full, shard, WirePrecision::Fp32);
    results[static_cast<std::size_t>(rank)] = shard;
  });
  const int rank_sum = p * (p - 1) / 2;
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      const float expected =
          static_cast<float>(100 * rank_sum + p * (r * 10 + static_cast<int>(i)));
      EXPECT_EQ(results[static_cast<std::size_t>(r)][i], expected)
          << "rank " << r << " i " << i;
    }
  }
}

TEST_P(CollectiveWorlds, AllReduceSumsEverywhere) {
  const int p = GetParam();
  Fabric fabric(p);
  const std::size_t n = static_cast<std::size_t>(4 * p);
  std::vector<std::vector<float>> results(static_cast<std::size_t>(p));
  run_workers(fabric, [&](int rank, Endpoint& ep) {
    std::vector<float> buf(n);
    for (std::size_t i = 0; i < n; ++i) {
      buf[i] = static_cast<float>(rank) + static_cast<float>(i) * 0.5f;
    }
    ring_all_reduce(ep, std::span<float>(buf.data(), buf.size()),
                    WirePrecision::Fp32);
    results[static_cast<std::size_t>(rank)] = buf;
  });
  const float rank_sum = static_cast<float>(p * (p - 1) / 2);
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(results[static_cast<std::size_t>(r)][i],
                  rank_sum + static_cast<float>(p) * static_cast<float>(i) *
                                 0.5f,
                  1e-4f);
    }
  }
}

TEST_P(CollectiveWorlds, BroadcastFromEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    Fabric fabric(p);
    std::vector<std::vector<float>> results(static_cast<std::size_t>(p));
    run_workers(fabric, [&](int rank, Endpoint& ep) {
      std::vector<float> buf(3, rank == root ? 99.0f : 0.0f);
      ring_broadcast(ep, root, std::span<float>(buf.data(), buf.size()),
                     WirePrecision::Fp32);
      results[static_cast<std::size_t>(rank)] = buf;
    });
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(results[static_cast<std::size_t>(r)][0], 99.0f)
          << "root " << root << " rank " << r;
    }
  }
}

TEST_P(CollectiveWorlds, ReduceToRootSumsAtRootOnly) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    Fabric fabric(p);
    std::vector<float> result(2, -1.0f);
    run_workers(fabric, [&](int rank, Endpoint& ep) {
      std::vector<float> contribution = {static_cast<float>(rank),
                                         static_cast<float>(2 * rank)};
      std::vector<float> out(2, -1.0f);
      ring_reduce_to_root(ep, root, contribution,
                          std::span<float>(out.data(), out.size()),
                          WirePrecision::Fp32);
      if (rank == root) {
        result = out;
      }
    });
    EXPECT_EQ(result[0], static_cast<float>(p * (p - 1) / 2)) << root;
    EXPECT_EQ(result[1], static_cast<float>(p * (p - 1))) << root;
  }
}

TEST_P(CollectiveWorlds, BarrierCompletes) {
  const int p = GetParam();
  Fabric fabric(p);
  std::atomic<int> after{0};
  run_workers(fabric, [&](int, Endpoint& ep) {
    barrier(ep);
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), p);
}

INSTANTIATE_TEST_SUITE_P(Worlds, CollectiveWorlds,
                         ::testing::Values(1, 2, 3, 4, 7, 8));

TEST(FabricStats, PairCountsAndMaxInFlight) {
  Fabric fabric(3);
  run_workers(fabric, [](int rank, Endpoint& ep) {
    if (rank == 0) {
      // Three eager sends queue up before rank 1 receives any of them.
      for (std::int64_t t = 0; t < 3; ++t) {
        ep.send(1, /*tag=*/t, std::vector<std::uint8_t>(16, 0xAB));
      }
      ep.send(2, /*tag=*/9, std::vector<std::uint8_t>(8, 0xCD));
    } else if (rank == 1) {
      // Receive in reverse tag order so all three are in flight first.
      (void)ep.recv(0, 2);
      (void)ep.recv(0, 1);
      (void)ep.recv(0, 0);
    } else {
      (void)ep.recv(0, 9);
    }
  });

  const FabricStats pair01 = fabric.pair_stats(0, 1);
  EXPECT_EQ(pair01.messages, 3u);
  EXPECT_EQ(pair01.bytes, 48u);
  EXPECT_EQ(pair01.in_flight, 0u);  // everything was consumed
  // The tag-2 recv can only match after all three sends are queued.
  EXPECT_EQ(pair01.max_in_flight, 3u);

  const FabricStats pair02 = fabric.pair_stats(0, 2);
  EXPECT_EQ(pair02.messages, 1u);
  EXPECT_EQ(pair02.bytes, 8u);
  EXPECT_EQ(pair02.max_in_flight, 1u);

  // Untouched pairs stay zero; the matrix covers all src x dst.
  const std::vector<FabricStats> matrix = fabric.stats_matrix();
  ASSERT_EQ(matrix.size(), 9u);
  EXPECT_EQ(matrix[1 * 3 + 0].messages, 0u);
  EXPECT_EQ(fabric.max_in_flight(), 3u);
  EXPECT_EQ(fabric.total_messages(), 4u);
  EXPECT_EQ(fabric.total_bytes(), 56u);

  fabric.reset_stats();
  EXPECT_EQ(fabric.total_messages(), 0u);
  EXPECT_EQ(fabric.max_in_flight(), 0u);
  EXPECT_EQ(fabric.pair_stats(0, 1).max_in_flight, 0u);
  EXPECT_EQ(fabric.pair_stats(0, 1).bytes, 0u);
}

TEST(Collectives, AllReduceRequiresDivisibleBuffer) {
  Fabric fabric(3);
  fabric.set_recv_timeout(std::chrono::milliseconds(200));
  EXPECT_THROW(run_workers(fabric,
                           [](int, Endpoint& ep) {
                             std::vector<float> buf(4);  // not divisible by 3
                             ring_all_reduce(
                                 ep, std::span<float>(buf.data(), buf.size()),
                                 WirePrecision::Fp32);
                           }),
               Error);
}

// ---- fault injection (comm/fault.hpp) ---------------------------------------

TEST(FaultPlan, SpecRoundTrips) {
  const std::string spec =
      "nodedup,retries:4,delay:p=0.1:src=1:dst=2:tag=3:ns=500,"
      "drop:p=0.02:ns=1000000,dup:p=0.5:tag=3:ns=2000000,"
      "reorder:p=0.25:ns=2000000,stall:rank=2:op=40";
  const FaultPlan plan = parse_fault_plan(spec, 77);
  EXPECT_FALSE(plan.dedup);
  EXPECT_EQ(plan.max_retries, 4);
  ASSERT_EQ(plan.rules.size(), 5u);
  EXPECT_EQ(plan.rules[0].kind, FaultKind::kDelay);
  EXPECT_EQ(plan.rules[0].src, 1);
  EXPECT_EQ(plan.rules[0].dst, 2);
  EXPECT_EQ(plan.rules[0].tag, 3);
  EXPECT_EQ(plan.rules[4].kind, FaultKind::kStall);
  EXPECT_EQ(plan.rules[4].stall_rank, 2);
  EXPECT_EQ(plan.rules[4].stall_op, 40);
  EXPECT_TRUE(plan.has_stalls());
  // Canonical form re-parses to the same canonical form.
  const std::string canon = to_spec(plan);
  EXPECT_EQ(to_spec(parse_fault_plan(canon, 77)), canon);
}

TEST(FaultPlan, MalformedSpecsThrow) {
  EXPECT_THROW(parse_fault_plan("explode:p=1", 0), Error);
  EXPECT_THROW(parse_fault_plan("delay:p=1.5", 0), Error);
  EXPECT_THROW(parse_fault_plan("delay:p", 0), Error);
  EXPECT_THROW(parse_fault_plan("drop:p=abc", 0), Error);
  EXPECT_THROW(parse_fault_plan("delay:frequency=2", 0), Error);
  EXPECT_THROW(parse_fault_plan("retries", 0), Error);
  EXPECT_TRUE(parse_fault_plan("", 0).empty());
}

TEST(FaultPlan, HitIsDeterministicAndSeedSensitive) {
  FaultPlan a = parse_fault_plan("drop:p=0.3", 1);
  FaultPlan b = parse_fault_plan("drop:p=0.3", 1);
  FaultPlan c = parse_fault_plan("drop:p=0.3", 2);
  int diffs = 0;
  int hits = 0;
  for (std::uint64_t seq = 0; seq < 2000; ++seq) {
    const bool ha = a.hit(0, 0, 1, 3, seq, 0);
    EXPECT_EQ(ha, b.hit(0, 0, 1, 3, seq, 0)) << seq;
    hits += ha ? 1 : 0;
    diffs += ha != c.hit(0, 0, 1, 3, seq, 0) ? 1 : 0;
  }
  // p=0.3 over 2000 trials: comfortably inside [400, 800].
  EXPECT_GT(hits, 400);
  EXPECT_LT(hits, 800);
  // A different seed gives a genuinely different schedule.
  EXPECT_GT(diffs, 100);
}

TEST(FaultPlan, EdgeAndTagFiltersApply) {
  const FaultPlan plan = parse_fault_plan("drop:p=1:src=0:dst=1:tag=7", 0);
  EXPECT_TRUE(plan.hit(0, 0, 1, 7, 0, 0));
  EXPECT_FALSE(plan.hit(0, 1, 0, 7, 0, 0));
  EXPECT_FALSE(plan.hit(0, 0, 2, 7, 0, 0));
  EXPECT_FALSE(plan.hit(0, 0, 1, 8, 0, 0));
}

TEST(Fault, DuplicatesAreDiscardedByTheReceiver) {
  Fabric fabric(2);
  fabric.install_fault_plan(parse_fault_plan("dup:p=1:ns=0", 9));
  std::thread t([&] {
    for (std::uint8_t i = 0; i < 3; ++i) {
      fabric.endpoint(1).send(0, 5, {i});
    }
  });
  for (std::uint8_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fabric.endpoint(0).recv(1, 5), std::vector<std::uint8_t>{i});
  }
  t.join();
  const FaultStats stats = fabric.fault_stats();
  EXPECT_EQ(stats.duplicates, 3u);
  // The copy of the last message is still queued (nothing consumed after
  // it); the first two copies were skipped by the reassembly cursor.
  EXPECT_EQ(stats.duplicates_discarded, 2u);
  // Logical (deduplicated) message count only.
  EXPECT_EQ(fabric.pair_stats(1, 0).messages, 3u);
}

TEST(Fault, DroppedMessagesAreRetransmittedNotLost) {
  Fabric fabric(2);
  // p=1 drops every attempt up to retries, then force-delivers: the recv
  // below must succeed after ~retries backoffs rather than deadlock.
  fabric.install_fault_plan(parse_fault_plan("retries:3,drop:p=1:us=200", 9));
  std::thread t([&] { fabric.endpoint(1).send(0, 5, {42}); });
  EXPECT_EQ(fabric.endpoint(0).recv(1, 5), std::vector<std::uint8_t>{42});
  t.join();
  const FaultStats stats = fabric.fault_stats();
  EXPECT_EQ(stats.drops, 3u);
  EXPECT_EQ(stats.retries, 3u);
}

TEST(Fault, ReorderedStreamIsReassembledInOrder) {
  Fabric fabric(2);
  fabric.install_fault_plan(parse_fault_plan("reorder:p=0.5:us=300", 9));
  constexpr std::uint8_t kN = 16;
  std::thread t([&] {
    for (std::uint8_t i = 0; i < kN; ++i) {
      fabric.endpoint(1).send(0, 5, {i});
    }
  });
  for (std::uint8_t i = 0; i < kN; ++i) {
    EXPECT_EQ(fabric.endpoint(0).recv(1, 5), std::vector<std::uint8_t>{i});
  }
  t.join();
  EXPECT_GT(fabric.fault_stats().reorders, 0u);
}

TEST(Fault, EventLogIsDeterministicAcrossRuns) {
  const auto run = [] {
    Fabric fabric(2);
    fabric.install_fault_plan(
        parse_fault_plan("drop:p=0.4:us=100,dup:p=0.4:ns=0", 123));
    std::thread t([&] {
      for (std::uint8_t i = 0; i < 32; ++i) {
        fabric.endpoint(1).send(0, 5, {i});
      }
    });
    for (std::uint8_t i = 0; i < 32; ++i) {
      (void)fabric.endpoint(0).recv(1, 5);
    }
    t.join();
    return fabric.fault_events();
  };
  const std::vector<FaultEvent> first = run();
  const std::vector<FaultEvent> second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Fault, RecvTimeoutThrowsStructuredCommError) {
  Fabric fabric(2);
  fabric.set_recv_timeout(std::chrono::milliseconds(50));
  // An unrelated pending message shows up in the in-flight count.
  fabric.endpoint(1).send(0, /*tag=*/9, {1, 2, 3});
  try {
    (void)fabric.endpoint(0).recv(1, /*tag=*/7);
    FAIL() << "recv should have timed out";
  } catch (const CommError& e) {
    EXPECT_EQ(e.info().kind, CommErrorKind::kRecvTimeout);
    EXPECT_EQ(e.info().rank, 0);
    EXPECT_EQ(e.info().peer, 1);
    EXPECT_EQ(e.info().tag, 7);
    EXPECT_EQ(e.info().expected_seq, 0u);
    EXPECT_EQ(e.info().pending_messages, 1u);
    EXPECT_NE(std::string(e.what()).find("rank 0"), std::string::npos);
    EXPECT_TRUE(e.recoverable());
  }
}

TEST(Fault, StallAbortsEveryRankAndRecovers) {
  Fabric fabric(2);
  fabric.set_recv_timeout(std::chrono::milliseconds(5000));
  fabric.install_fault_plan(parse_fault_plan("stall:rank=0:op=2", 0));
  try {
    run_workers(fabric, [](int rank, Endpoint& ep) {
      if (rank == 0) {
        for (std::int64_t i = 0; i < 4; ++i) {
          ep.send(1, i, {7});  // third fabric op trips the stall
        }
      } else {
        for (std::int64_t i = 0; i < 4; ++i) {
          (void)ep.recv(0, i);
        }
      }
    });
    FAIL() << "stall should have aborted the step";
  } catch (const CommError& e) {
    EXPECT_TRUE(e.info().kind == CommErrorKind::kStall ||
                e.info().kind == CommErrorKind::kAborted);
  }
  EXPECT_TRUE(fabric.aborted());
  EXPECT_EQ(fabric.fault_stats().stalls, 1u);

  fabric.recover();
  EXPECT_FALSE(fabric.aborted());
  EXPECT_EQ(fabric.fault_stats().recoveries, 1u);

  // The stall is transient (one-shot): the re-run completes.
  std::vector<std::uint8_t> got;
  run_workers(fabric, [&](int rank, Endpoint& ep) {
    if (rank == 0) {
      for (std::int64_t i = 0; i < 4; ++i) {
        ep.send(1, i, {static_cast<std::uint8_t>(i)});
      }
    } else {
      for (std::int64_t i = 0; i < 4; ++i) {
        got.push_back(ep.recv(0, i)[0]);
      }
    }
  });
  EXPECT_EQ(got, (std::vector<std::uint8_t>{0, 1, 2, 3}));
  EXPECT_EQ(fabric.fault_stats().stalls, 1u);  // did not re-fire
}

TEST(Fault, AbortWakesBlockedReceivers) {
  Fabric fabric(2);
  std::exception_ptr thrown;
  std::thread t([&] {
    try {
      (void)fabric.endpoint(0).recv(1, 3);
    } catch (...) {
      thrown = std::current_exception();
    }
  });
  // Give the receiver a moment to block, then fail the fabric.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  fabric.abort_all();
  t.join();
  ASSERT_TRUE(thrown != nullptr);
  try {
    std::rethrow_exception(thrown);
  } catch (const CommError& e) {
    EXPECT_EQ(e.info().kind, CommErrorKind::kAborted);
    EXPECT_EQ(e.info().rank, 0);
  }
}

// Collectives at degenerate world sizes must produce bit-identical results
// under message-level fault injection: the reliability layer may only cost
// latency, never numerics.
TEST_P(CollectiveWorlds, AllReduceBitwiseEqualUnderFaults) {
  const int p = GetParam();
  const std::size_t n = static_cast<std::size_t>(4 * std::max(p, 1));
  const auto run = [&](const char* spec) {
    Fabric fabric(p);
    if (spec != nullptr) {
      fabric.install_fault_plan(parse_fault_plan(spec, 42));
    }
    std::vector<std::vector<float>> results(static_cast<std::size_t>(p));
    run_workers(fabric, [&](int rank, Endpoint& ep) {
      std::vector<float> buf(n);
      for (std::size_t i = 0; i < n; ++i) {
        buf[i] = static_cast<float>(rank + 1) * 0.25f +
                 static_cast<float>(i) * 0.5f;
      }
      ring_all_reduce(ep, std::span<float>(buf.data(), buf.size()),
                      WirePrecision::Fp32);
      results[static_cast<std::size_t>(rank)] = buf;
    });
    return results;
  };
  const auto clean = run(nullptr);
  const auto faulty =
      run("delay:p=0.3:us=50,drop:p=0.2:us=100,dup:p=0.2:ns=0,"
          "reorder:p=0.2:us=100");
  EXPECT_EQ(clean, faulty);
}

TEST_P(CollectiveWorlds, GatherAndReduceScatterBitwiseEqualUnderFaults) {
  const int p = GetParam();
  const std::size_t n = 6;
  const auto run = [&](const char* spec) {
    Fabric fabric(p);
    if (spec != nullptr) {
      fabric.install_fault_plan(parse_fault_plan(spec, 7));
    }
    std::vector<std::vector<float>> gathered(static_cast<std::size_t>(p));
    std::vector<std::vector<float>> scattered(static_cast<std::size_t>(p));
    run_workers(fabric, [&](int rank, Endpoint& ep) {
      std::vector<float> shard(n, static_cast<float>(rank) * 1.5f + 0.125f);
      std::vector<float> full(n * static_cast<std::size_t>(p), -1.0f);
      ring_all_gather(ep, shard, full, WirePrecision::Fp32);
      gathered[static_cast<std::size_t>(rank)] = full;
      std::vector<float> out(n);
      ring_reduce_scatter(ep, full, out, WirePrecision::Fp32);
      scattered[static_cast<std::size_t>(rank)] = out;
    });
    return std::pair(gathered, scattered);
  };
  const auto clean = run(nullptr);
  const auto faulty = run("drop:p=0.25:us=100,dup:p=0.25:ns=0");
  EXPECT_EQ(clean.first, faulty.first);
  EXPECT_EQ(clean.second, faulty.second);
}

TEST(ZeroCopy, BufferSendDeliversTheSameBytesWithoutCopying) {
  // The tentpole property: an in-process send of a tracked Buffer moves the
  // handle, never the payload. The receiver observes the sender's storage
  // pointer — zero payload copies end to end.
  Fabric fabric(2);
  Buffer payload = Buffer::allocate(1 << 20);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload.mutable_data()[i] = static_cast<std::uint8_t>(i * 131u);
  }
  const std::uint8_t* sent_storage = payload.data();

  fabric.endpoint(0).send(1, 7, std::move(payload));
  Buffer got = fabric.endpoint(1).recv_buffer(0, 7);
  ASSERT_EQ(got.size(), std::size_t{1} << 20);
  EXPECT_EQ(got.data(), sent_storage);  // same storage, not a copy
  EXPECT_TRUE(got.unique());            // and the fabric dropped its ref
  for (std::size_t i = 0; i < got.size(); i += 4097) {
    ASSERT_EQ(got.data()[i], static_cast<std::uint8_t>(i * 131u));
  }
}

TEST(ZeroCopy, IrecvBufferAlsoAliasesTheSenderStorage) {
  Fabric fabric(2);
  Buffer payload = Buffer::allocate(4096);
  const std::uint8_t* sent_storage = payload.data();
  fabric.endpoint(0).send(1, 3, std::move(payload));
  Buffer got;
  Request req = fabric.endpoint(1).irecv_buffer(0, 3, &got);
  req.wait();
  EXPECT_EQ(got.data(), sent_storage);
}

TEST(ZeroCopy, DuplicateFaultSharesThePayloadStorage) {
  // A dup fault enqueues a second *handle*, not a second payload: both
  // copies alias the same bytes, and the dedup layer discards one.
  Fabric fabric(2);
  fabric.install_fault_plan(parse_fault_plan("dup:p=1:ns=0", 42));
  Buffer payload = Buffer::allocate(1024);
  const std::uint8_t* sent_storage = payload.data();
  fabric.endpoint(0).send(1, 5, std::move(payload));
  Buffer got = fabric.endpoint(1).recv_buffer(0, 5);
  EXPECT_EQ(got.data(), sent_storage);
}

TEST(ZeroCopy, RingStatsSeeTrafficAndOverflowSpill) {
  // kRingCapacity is 256 per edge: a 300-message eager burst overflows into
  // the spillover deque but arrives complete and in order.
  Fabric fabric(2);
  for (int i = 0; i < 300; ++i) {
    fabric.endpoint(0).send(1, 7, std::vector<std::uint8_t>{
                                      static_cast<std::uint8_t>(i),
                                      static_cast<std::uint8_t>(i >> 8)});
  }
  for (int i = 0; i < 300; ++i) {
    const std::vector<std::uint8_t> got = fabric.endpoint(1).recv(0, 7);
    ASSERT_EQ(got[0], static_cast<std::uint8_t>(i));
    ASSERT_EQ(got[1], static_cast<std::uint8_t>(i >> 8));
  }
  const RingStats rs = fabric.ring_stats();
  EXPECT_GE(rs.overflow, 300u - 256u);  // at least the burst's excess spilled
}

TEST(ZeroCopy, ParkAndNotifyWhenReceiverOutpacesSender) {
  // A receiver that blocks before the send must park (spin budget exhausted)
  // and be woken by the producer-side notify.
  Fabric fabric(2);
  std::vector<std::uint8_t> got;
  std::thread receiver(
      [&] { got = fabric.endpoint(1).recv(0, 9); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  fabric.endpoint(0).send(1, 9, std::vector<std::uint8_t>{42});
  receiver.join();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 42);
  const RingStats rs = fabric.ring_stats();
  EXPECT_GE(rs.parks, 1u);
  EXPECT_GE(rs.notifies, 1u);
  // The spin budget is bypassed on single-CPU hosts (spinning would only
  // starve the producer), so spins are expected only with real concurrency.
  if (std::thread::hardware_concurrency() > 1) {
    EXPECT_GT(rs.spins, 0u);
  } else {
    EXPECT_EQ(rs.spins, 0u);
  }
}

}  // namespace
}  // namespace weipipe::comm
