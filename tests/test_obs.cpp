// Observability-layer tests: recorder/ring semantics, metrics registry JSON,
// the Chrome trace exporter (golden round-trip through the JSON parser), the
// runtime->SimResult converter, trace::write_file directory creation, and
// the measured-vs-static profile invariants on a real 4-rank run.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timeseries.hpp"
#include "prof/bench_run.hpp"
#include "prof/profile.hpp"
#include "trace/export.hpp"
#include "trace/runtime.hpp"

namespace weipipe {
namespace {

// Sanitizer builds slow the machinery *between* ops (locks, condvars,
// instrumentation) while busy-wait compute keeps wall-clock durations, so
// measured bubbles inflate; the measured-vs-predicted envelope widens there.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

obs::Span make_span(obs::SpanKind kind, int rank, std::int64_t start_ns,
                    std::int64_t end_ns) {
  obs::Span s;
  s.kind = kind;
  s.rank = rank;
  s.start_ns = start_ns;
  s.end_ns = end_ns;
  return s;
}

// ---- recorder ---------------------------------------------------------------

TEST(Recorder, DisabledByDefault) {
  ASSERT_EQ(obs::Recorder::active(), nullptr);
  EXPECT_FALSE(obs::enabled());
  obs::SpanScope scope(obs::SpanKind::kForward, 0, 0);
  EXPECT_FALSE(scope.armed());  // no recorder -> never armed, never records
}

TEST(Recorder, RecordsAndDrainsAcrossRankThreads) {
  obs::Recorder recorder;
  recorder.install();
  ASSERT_TRUE(obs::enabled());

  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([r] {
      obs::RankScope rank_scope(r);
      for (int i = 0; i < 5; ++i) {
        obs::SpanScope scope(obs::SpanKind::kForward, i, r);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // Driver-thread span lands on the unranked ring.
  { obs::SpanScope scope(obs::SpanKind::kStep); }

  std::vector<obs::Span> spans = recorder.drain();
  EXPECT_EQ(spans.size(), 16u);
  EXPECT_EQ(recorder.dropped(), 0u);
  // drain() orders by (rank, start); the unranked step span sorts first.
  int last_rank = -2;
  std::int64_t last_start = 0;
  for (const obs::Span& s : spans) {
    EXPECT_LE(s.start_ns, s.end_ns);
    if (s.rank == last_rank) {
      EXPECT_GE(s.start_ns, last_start);
    } else {
      EXPECT_GT(s.rank, last_rank);
      last_rank = s.rank;
    }
    last_start = s.start_ns;
  }
  // A second drain has nothing left.
  EXPECT_TRUE(recorder.drain().empty());
  recorder.uninstall();
  EXPECT_FALSE(obs::enabled());
}

TEST(Recorder, FullRingDropsAndCounts) {
  obs::Recorder recorder({.ring_capacity = 16});
  recorder.install();
  {
    obs::RankScope rank_scope(0);
    for (int i = 0; i < 50; ++i) {
      obs::SpanScope scope(obs::SpanKind::kForward, i, 0);
    }
  }
  const std::vector<obs::Span> spans = recorder.drain();
  EXPECT_EQ(spans.size(), 16u);
  EXPECT_EQ(recorder.dropped(), 34u);
  // The ring kept the oldest spans (drop-new policy).
  EXPECT_EQ(spans.front().microbatch, 0);
  EXPECT_EQ(spans.back().microbatch, 15);
  recorder.uninstall();
}

TEST(Recorder, RankRingSurvivesWorkerRespawn) {
  obs::Recorder recorder;
  recorder.install();
  for (int generation = 0; generation < 3; ++generation) {
    std::thread worker([generation] {
      obs::RankScope rank_scope(1);
      obs::SpanScope scope(obs::SpanKind::kForward, generation, 1);
    });
    worker.join();
  }
  const std::vector<obs::Span> spans = recorder.drain();
  ASSERT_EQ(spans.size(), 3u);
  for (int g = 0; g < 3; ++g) {
    EXPECT_EQ(spans[static_cast<std::size_t>(g)].microbatch, g);
    EXPECT_EQ(spans[static_cast<std::size_t>(g)].rank, 1);
  }
  recorder.uninstall();
}

TEST(Recorder, ReinstallAtSameAddressResolvesFreshRings) {
  // Regression: the per-thread ring cache must key on the install epoch, not
  // the recorder's address — consecutive stack-allocated recorders typically
  // reuse the same address, and an address-keyed cache would hand back rings
  // owned by the destroyed instance.
  for (int round = 0; round < 3; ++round) {
    obs::Recorder recorder;
    recorder.install();
    obs::RankScope rank_scope(0);
    { obs::SpanScope scope(obs::SpanKind::kForward, round, 0); }
    const std::vector<obs::Span> spans = recorder.drain();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].microbatch, round);
    recorder.uninstall();
  }
}

// ---- metrics ----------------------------------------------------------------

TEST(Metrics, RegistryJsonRoundTrip) {
  obs::MetricsRegistry registry;
  registry.counter("wire.bytes").add(4096);
  registry.counter("wire.bytes").add(1024);
  registry.gauge("bubble").set(0.125);
  registry.gauge("peak").set_max(10.0);
  registry.gauge("peak").set_max(3.0);  // max keeps 10
  for (int i = 1; i <= 100; ++i) {
    registry.histogram("step.seconds").observe(static_cast<double>(i));
  }

  const obs::JsonParseResult parsed = obs::parse_json(registry.to_json());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const obs::JsonValue* counters = parsed.value.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("wire.bytes")->as_number(), 5120.0);
  const obs::JsonValue* gauges = parsed.value.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("bubble")->as_number(), 0.125);
  EXPECT_DOUBLE_EQ(gauges->find("peak")->as_number(), 10.0);
  const obs::JsonValue* hist = parsed.value.find("histograms");
  ASSERT_NE(hist, nullptr);
  const obs::JsonValue* step = hist->find("step.seconds");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->find("count")->as_number(), 100.0);
  EXPECT_DOUBLE_EQ(step->find("min")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(step->find("max")->as_number(), 100.0);
  EXPECT_DOUBLE_EQ(step->find("mean")->as_number(), 50.5);
  // Log-bucketed quantiles are estimates; check ordering and rough position.
  const double p50 = step->find("p50")->as_number();
  const double p99 = step->find("p99")->as_number();
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_GE(p99, p50);

  registry.reset();
  const obs::JsonParseResult after = obs::parse_json(registry.to_json());
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.value.find("counters")->find("wire.bytes")->as_number(),
            0.0);
}

TEST(Metrics, RegistryAliasResetClearsEveryInstrumentFamily) {
  // obs::Registry is the conventional short name; reset() zeroes counters,
  // clears gauges, and empties histograms without dropping registration.
  obs::Registry registry;
  registry.counter("c").add(7);
  registry.gauge("g").set(1.5);
  registry.histogram("h").observe(2.0);
  registry.reset();

  const obs::JsonParseResult parsed = obs::parse_json(registry.to_json());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.find("counters")->find("c")->as_number(), 0.0);
  const obs::JsonValue* h = parsed.value.find("histograms")->find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->as_number(), 0.0);
  registry.counter("c").add(3);  // still usable after reset
  EXPECT_EQ(registry.counter("c").value(), 3u);
}

TEST(Metrics, HistogramQuantilesInterpolateInsideBuckets) {
  // Empty: all zeros.
  obs::Histogram empty;
  const obs::HistogramSnapshot e = empty.snapshot();
  EXPECT_EQ(e.count, 0u);
  EXPECT_DOUBLE_EQ(e.p50, 0.0);
  EXPECT_DOUBLE_EQ(e.sum, 0.0);

  // A single observation reports itself exactly at every quantile — the
  // log-bucket boundary must not leak through.
  obs::Histogram one;
  one.observe(0.0123);
  const obs::HistogramSnapshot s1 = one.snapshot();
  EXPECT_EQ(s1.count, 1u);
  EXPECT_DOUBLE_EQ(s1.p50, 0.0123);
  EXPECT_DOUBLE_EQ(s1.p90, 0.0123);
  EXPECT_DOUBLE_EQ(s1.p99, 0.0123);
  EXPECT_DOUBLE_EQ(s1.sum, 0.0123);

  // Many observations inside ONE log bucket: quantiles stay within the
  // observed [min, max] and keep their ordering instead of collapsing onto
  // the bucket's upper boundary (the pre-fix degenerate case).
  obs::Histogram tight;
  for (int i = 0; i < 100; ++i) {
    tight.observe(1.00 + 0.001 * i);  // 1.000 .. 1.099, one bucket
  }
  const obs::HistogramSnapshot st = tight.snapshot();
  EXPECT_GE(st.p50, st.min);
  EXPECT_LE(st.p50, st.max);
  EXPECT_LE(st.p50, st.p90);
  EXPECT_LE(st.p90, st.p99);
  EXPECT_LE(st.p99, st.max);
  EXPECT_LT(st.p50, st.max);  // p50 must not sit on the bucket edge
  EXPECT_NEAR(st.sum, 104.95, 1e-9);
}

TEST(Metrics, RegistrationRejectsInvalidNames) {
  EXPECT_TRUE(obs::valid_metric_name("step.seconds"));
  EXPECT_TRUE(obs::valid_metric_name("fabric.pair.0->1.messages"));
  EXPECT_TRUE(obs::valid_metric_name("mem/scratch_bytes-2"));
  EXPECT_FALSE(obs::valid_metric_name(""));
  EXPECT_FALSE(obs::valid_metric_name("has space"));
  EXPECT_FALSE(obs::valid_metric_name("quote\"d"));
  EXPECT_FALSE(obs::valid_metric_name("new\nline"));

  obs::Registry registry;
  EXPECT_NO_THROW(registry.counter("fabric.pair.0->1.messages"));
  EXPECT_THROW(registry.counter("bad name"), Error);
  EXPECT_THROW(registry.gauge(""), Error);
  EXPECT_THROW(registry.histogram("tab\there"), Error);
}

TEST(Metrics, PrometheusExpositionLiftsRankLabels) {
  obs::Registry registry;
  registry.counter("wire.bytes.rank.0").add(100);
  registry.counter("wire.bytes.rank.1").add(200);
  registry.gauge("bubble").set(0.25);
  registry.histogram("step.seconds").observe(0.5);

  const std::string prom =
      registry.to_prometheus({{"job", "profile"}, {"strategy", "weipipe"}});
  // One family for both ranks, with the trailing .rank.<N> lifted into a
  // label; the caller's labels are stamped on every sample.
  EXPECT_NE(prom.find("# TYPE weipipe_wire_bytes_rank counter"),
            std::string::npos);
  EXPECT_NE(prom.find("weipipe_wire_bytes_rank{job=\"profile\","
                      "strategy=\"weipipe\",rank=\"0\"} 100"),
            std::string::npos);
  EXPECT_NE(prom.find("weipipe_wire_bytes_rank{job=\"profile\","
                      "strategy=\"weipipe\",rank=\"1\"} 200"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE weipipe_bubble gauge"), std::string::npos);
  // Histograms fan out into _count/_sum/quantile series.
  EXPECT_NE(prom.find("weipipe_step_seconds_count"), std::string::npos);
  EXPECT_NE(prom.find("weipipe_step_seconds_p99"), std::string::npos);
  // The exposition never emits a raw dotted name.
  EXPECT_EQ(prom.find("wire.bytes"), std::string::npos);
}

TEST(Metrics, FlatSnapshotCoversEveryInstrument) {
  obs::Registry registry;
  registry.counter("c").add(3);
  registry.gauge("g").set(1.5);
  registry.histogram("h").observe(2.0);
  registry.histogram("h").observe(4.0);

  std::map<std::string, double> flat;
  for (const auto& [name, value] : registry.flat_snapshot()) {
    flat[name] = value;
  }
  EXPECT_DOUBLE_EQ(flat.at("c"), 3.0);
  EXPECT_DOUBLE_EQ(flat.at("g"), 1.5);
  EXPECT_DOUBLE_EQ(flat.at("h.count"), 2.0);
  EXPECT_DOUBLE_EQ(flat.at("h.sum"), 6.0);
}

// ---- telemetry sampler ------------------------------------------------------

TEST(Telemetry, SamplesRegistriesAndGaugeSources) {
  obs::Registry registry;
  registry.counter("ticks").add(5);

  obs::TimeseriesOptions options;
  options.labels.job = "test";
  options.labels.strategy = "unit";
  options.watch_ledger = false;
  obs::TelemetrySampler sampler(options);
  sampler.watch_registry(&registry);
  double source_value = 1.0;
  const obs::TelemetrySampler::SourceId id = sampler.add_gauge_source(
      "telemetry.test.gauge", [&source_value] { return source_value; });

  sampler.sample_now();
  registry.counter("ticks").add(5);
  source_value = 2.0;
  sampler.sample_now();

  const obs::TimeseriesSnapshot snap = sampler.snapshot();
  EXPECT_EQ(snap.labels.job, "test");
  EXPECT_EQ(snap.samples_taken, 2);
  ASSERT_EQ(snap.sample_t_ns.size(), 2u);
  EXPECT_LT(snap.sample_t_ns[0], snap.sample_t_ns[1]);

  std::map<std::string, std::vector<double>> series;
  for (const obs::TimeseriesSeries& s : snap.series) {
    series[s.name] = s.values;
  }
  ASSERT_EQ(series.count("ticks"), 1u);
  EXPECT_EQ(series.at("ticks"), (std::vector<double>{5.0, 10.0}));
  ASSERT_EQ(series.count("telemetry.test.gauge"), 1u);
  EXPECT_EQ(series.at("telemetry.test.gauge"),
            (std::vector<double>{1.0, 2.0}));

  // Removed sources stop being sampled (new samples omit the series).
  sampler.remove_source(id);
  sampler.sample_now();
  const obs::TimeseriesSnapshot after = sampler.snapshot();
  for (const obs::TimeseriesSeries& s : after.series) {
    if (s.name == "telemetry.test.gauge") {
      ASSERT_EQ(s.values.size(), 3u);
      EXPECT_TRUE(std::isnan(s.values[2]));
    }
  }

  // Exports parse / expose.
  const obs::JsonParseResult parsed = obs::parse_json(after.to_json());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.find("schema_version")->as_number(),
            static_cast<double>(obs::kTimeseriesSchemaVersion));
  EXPECT_EQ(parsed.value.find("labels")->find("job")->as_string(), "test");
  const std::string prom = after.to_prometheus();
  EXPECT_NE(prom.find("weipipe_ticks{job=\"test\",strategy=\"unit\"} 10"),
            std::string::npos);
}

TEST(Telemetry, WindowDecimatesInPlaceAndDoublesStride) {
  obs::TimeseriesOptions options;
  options.window_capacity = 4;  // clamp floor: decimate on the 5th sample
  options.watch_ledger = false;
  obs::TelemetrySampler sampler(options);
  obs::Registry registry;
  sampler.watch_registry(&registry);
  for (int i = 0; i < 32; ++i) {
    registry.gauge("v").set(static_cast<double>(i));
    sampler.sample_now();
  }
  const obs::TimeseriesSnapshot snap = sampler.snapshot();
  EXPECT_EQ(snap.samples_taken, 32);
  EXPECT_GT(snap.samples_dropped, 0);
  EXPECT_GE(snap.stride, 2);  // at least one decimation happened
  EXPECT_LE(snap.sample_t_ns.size(), 4u);
  ASSERT_FALSE(snap.series.empty());
  // The newest sample always survives decimation.
  const std::vector<double>& values = snap.series.front().values;
  ASSERT_FALSE(values.empty());
  EXPECT_DOUBLE_EQ(values.back(), 31.0);
}

TEST(Telemetry, BackgroundThreadStartStopIsClean) {
  obs::TimeseriesOptions options;
  options.sample_period_seconds = 1e-3;
  obs::TelemetrySampler sampler(options);
  sampler.watch_registry(&obs::runtime_metrics());
  sampler.start();
  EXPECT_TRUE(sampler.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  // stop() takes a final edge sample, so the window is never empty.
  EXPECT_GE(sampler.snapshot().samples_taken, 1);
}

// ---- chrome trace golden round-trip ----------------------------------------

std::vector<obs::Span> golden_spans() {
  std::vector<obs::Span> spans;
  // Rank 0: forward (acquires 1 KiB), then sends flow 7 to rank 1.
  obs::Span f0 = make_span(obs::SpanKind::kForward, 0, 1'000, 5'000);
  f0.microbatch = 0;
  f0.chunk = 0;
  f0.bytes = 1024;
  f0.act_bytes_after = 1024.0;
  spans.push_back(f0);
  obs::Span send = make_span(obs::SpanKind::kSendTransfer, 0, 5'000, 6'000);
  send.peer = 1;
  send.tag = 20;
  send.bytes = 512;
  send.flow_id = 7;
  spans.push_back(send);
  // Rank 1: blocked on the message, then computes.
  obs::Span wait = make_span(obs::SpanKind::kRecvWait, 1, 2'000, 6'500);
  wait.peer = 0;
  wait.tag = 20;
  wait.bytes = 512;
  wait.flow_id = 7;
  spans.push_back(wait);
  obs::Span f1 = make_span(obs::SpanKind::kForward, 1, 6'500, 9'000);
  f1.microbatch = 0;
  f1.chunk = 1;
  spans.push_back(f1);
  // Driver step marker (unranked).
  spans.push_back(make_span(obs::SpanKind::kStep, -1, 500, 10'000));
  return spans;
}

TEST(ChromeTrace, GoldenRoundTrip) {
  const std::string json = obs::spans_to_chrome_trace(golden_spans());
  const obs::JsonParseResult parsed = obs::parse_json(json);
  ASSERT_TRUE(parsed.ok) << parsed.error;

  const obs::JsonValue* events = parsed.value.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::map<int, double> last_ts;            // per-track monotone timestamps
  std::map<std::int64_t, int> flow_starts;  // id -> count
  std::map<std::int64_t, int> flow_ends;
  int metadata = 0;
  int complete = 0;
  for (const obs::JsonValue& e : events->array) {
    const std::string& ph = e.find("ph")->as_string();
    if (ph == "M") {
      ++metadata;
      continue;
    }
    const int tid = static_cast<int>(e.find("tid")->as_number());
    const double ts = e.find("ts")->as_number();
    EXPECT_GE(ts, 0.0);  // rebased to the earliest span
    if (ph == "X") {
      ++complete;
      auto it = last_ts.find(tid);
      if (it != last_ts.end()) {
        EXPECT_GE(ts, it->second) << "track " << tid << " went backwards";
      }
      last_ts[tid] = ts;
      EXPECT_GE(e.find("dur")->as_number(), 0.0);
      ASSERT_NE(e.find("name"), nullptr);
      ASSERT_NE(e.find("args"), nullptr);
    } else if (ph == "s") {
      flow_starts[static_cast<std::int64_t>(e.find("id")->as_number())]++;
    } else if (ph == "f") {
      flow_ends[static_cast<std::int64_t>(e.find("id")->as_number())]++;
      EXPECT_EQ(e.find("bp")->as_string(), "e");
    }
  }
  EXPECT_GE(metadata, 4);  // process_name + 3 tracks (rank 0, rank 1, driver)
  EXPECT_EQ(complete, 5);
  // Every flow arrow is a matched s/f pair on the fabric-assigned id.
  EXPECT_EQ(flow_starts.size(), 1u);
  EXPECT_EQ(flow_starts, flow_ends);
  EXPECT_EQ(flow_starts.count(7), 1u);

  // The forward span carries its schedule identity.
  bool found_f0 = false;
  for (const obs::JsonValue& e : events->array) {
    if (e.find("ph")->as_string() != "X" ||
        e.find("name")->as_string() != "F" ||
        e.find("tid")->as_number() != 0.0) {
      continue;
    }
    const obs::JsonValue* args = e.find("args");
    EXPECT_EQ(args->find("microbatch")->as_number(), 0.0);
    EXPECT_EQ(args->find("chunk")->as_number(), 0.0);
    EXPECT_EQ(args->find("act_bytes_after")->as_number(), 1024.0);
    found_f0 = true;
  }
  EXPECT_TRUE(found_f0);
}

// ---- runtime -> SimResult converter -----------------------------------------

TEST(RuntimeConvert, SpansBecomeRecords) {
  const sim::SimResult result = trace::spans_to_sim_result(golden_spans());
  // Two compute spans; the step marker and comm spans add no records.
  ASSERT_EQ(result.records.size(), 2u);
  ASSERT_EQ(result.busy_seconds.size(), 2u);
  // Earliest *ranked* span (rank 0 forward at 1000 ns) defines t = 0.
  EXPECT_DOUBLE_EQ(result.records[0].start, 0.0);
  EXPECT_DOUBLE_EQ(result.records[0].end, 4e-6);
  EXPECT_EQ(result.records[0].rank, 0);
  EXPECT_EQ(result.records[1].rank, 1);
  EXPECT_DOUBLE_EQ(result.makespan, 8e-6);  // 1000 .. 9000 ns
  EXPECT_DOUBLE_EQ(result.peak_act_bytes[0], 1024.0);
  EXPECT_DOUBLE_EQ(result.p2p_bytes, 512.0);
  ASSERT_EQ(result.links.size(), 1u);
  EXPECT_EQ(result.links[0].src, 0);
  EXPECT_EQ(result.links[0].dst, 1);
  EXPECT_DOUBLE_EQ(result.links[0].bytes, 512.0);
  EXPECT_GT(result.bubble_ratio(), 0.0);
}

TEST(RuntimeConvert, EmptyAndUnrankedSpansGiveEmptyResult) {
  EXPECT_TRUE(trace::spans_to_sim_result({}).records.empty());
  std::vector<obs::Span> only_driver;
  only_driver.push_back(make_span(obs::SpanKind::kStep, -1, 0, 1'000));
  const sim::SimResult result = trace::spans_to_sim_result(only_driver);
  EXPECT_TRUE(result.records.empty());
  EXPECT_DOUBLE_EQ(result.makespan, 0.0);
}

// ---- write_file parent-directory creation -----------------------------------

TEST(WriteFile, CreatesMissingParentDirectories) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "weipipe_obs_test";
  std::filesystem::remove_all(root);
  const std::filesystem::path nested = root / "a" / "b" / "trace.json";
  ASSERT_FALSE(std::filesystem::exists(root));

  trace::write_file(nested.string(), "{\"ok\":true}\n");

  ASSERT_TRUE(std::filesystem::exists(nested));
  std::FILE* f = std::fopen(nested.string().c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[32] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "{\"ok\":true}\n");
  std::filesystem::remove_all(root);
}

// ---- profile invariants on a real 4-rank run --------------------------------

TEST(Profile, Wzb2MeasuredPeakWithinStaticBoundAndTraceParses) {
  prof::ProfileOptions options;
  options.strategy = "wzb2";
  options.workers = 4;
  options.iters = 1;
  options.warmup_iters = 0;
  options.rounds = 2;
  // Big enough that per-message scheduler wakeups (~100 us) amortize into
  // the documented tolerance; small enough that the test stays < 1 s.
  options.unit_seconds = kSanitized ? 8e-3 : 3e-3;
  const prof::ProfileReport report = prof::run_profile(options);

  EXPECT_EQ(report.ranks, 4);
  EXPECT_TRUE(report.schedule_backed);
  EXPECT_EQ(report.dropped_spans, 0u);
  EXPECT_FALSE(report.spans.empty());
  EXPECT_GT(report.wire_messages, 0u);
  EXPECT_GT(report.max_in_flight, 0u);

  // Satellite invariant: runtime-measured peak activation bytes never exceed
  // the analyzer's static bound (the runner follows the program's memory
  // algebra, so this is exact equality up to rounding).
  ASSERT_GE(report.static_peak_bound_bytes, 0.0);
  EXPECT_LE(report.measured_peak_act_bytes,
            report.static_peak_bound_bytes + 0.5);

  // The engine prediction exists and both bubbles are sane fractions.
  ASSERT_GE(report.predicted_bubble, 0.0);
  EXPECT_LT(report.predicted_bubble, 1.0);
  EXPECT_GE(report.measured_bubble, 0.0);
  EXPECT_LT(report.measured_bubble, 1.0);
  // Scheduler wakeups only add idle time; allow generous slack for loaded
  // CI machines but catch nonsense (documented tolerance in
  // docs/OBSERVABILITY.md).
  EXPECT_LT(report.measured_bubble,
            report.predicted_bubble + (kSanitized ? 0.55 : 0.30));
  EXPECT_GE(report.measured_step_seconds,
            report.predicted_step_seconds * 0.5);

  // Both JSON artifacts parse; the trace's flow arrows come in matched
  // pairs with per-track monotone timestamps.
  const obs::JsonParseResult metrics = obs::parse_json(report.metrics_json);
  ASSERT_TRUE(metrics.ok) << metrics.error;
  EXPECT_NE(metrics.value.find("gauges")->find("fabric.max_in_flight"),
            nullptr);

  const obs::JsonParseResult trace = obs::parse_json(report.trace_json);
  ASSERT_TRUE(trace.ok) << trace.error;
  const obs::JsonValue* events = trace.value.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::map<int, double> last_ts;
  std::set<std::int64_t> starts;
  std::set<std::int64_t> ends;
  for (const obs::JsonValue& e : events->array) {
    const std::string& ph = e.find("ph")->as_string();
    if (ph == "X") {
      const int tid = static_cast<int>(e.find("tid")->as_number());
      const double ts = e.find("ts")->as_number();
      auto it = last_ts.find(tid);
      if (it != last_ts.end()) {
        EXPECT_GE(ts, it->second);
      }
      last_ts[tid] = ts;
    } else if (ph == "s") {
      starts.insert(static_cast<std::int64_t>(e.find("id")->as_number()));
    } else if (ph == "f") {
      ends.insert(static_cast<std::int64_t>(e.find("id")->as_number()));
    }
  }
  EXPECT_FALSE(starts.empty());
  EXPECT_EQ(starts, ends);
}

TEST(Profile, TrainerBackedWeiPipeMeasuredPeakWithinDerivedBound) {
  prof::ProfileOptions options;
  options.strategy = "weipipe";
  options.workers = 4;
  options.iters = 1;
  options.warmup_iters = 0;
  options.train.model.vocab_size = 32;
  options.train.model.dim = 16;
  options.train.model.n_layers = 4;
  options.train.model.n_heads = 2;
  options.train.model.seq_len = 8;
  options.train.seq_len = 8;
  options.train.num_microbatches = 4;
  options.train.microbatch_size = 1;
  const prof::ProfileReport report = prof::run_profile(options);

  EXPECT_FALSE(report.schedule_backed);
  EXPECT_EQ(report.ranks, 4);
  EXPECT_FALSE(report.spans.empty());
  EXPECT_GT(report.measured_step_seconds, 0.0);
  EXPECT_GT(report.wire_messages, 0u);
  EXPECT_GT(report.measured_peak_act_bytes, 0.0);
  // The derived schedule model exists for weipipe and its static bound
  // covers the measured peak (per-chunk costs are fitted as maxima).
  ASSERT_GE(report.static_peak_bound_bytes, 0.0);
  EXPECT_LE(report.measured_peak_act_bytes,
            report.static_peak_bound_bytes + 0.5);
  ASSERT_GE(report.predicted_bubble, 0.0);

  // Step spans made it into the trace (driver track).
  bool found_step = false;
  for (const obs::Span& s : report.spans) {
    if (s.kind == obs::SpanKind::kStep) {
      found_step = true;
    }
  }
  EXPECT_TRUE(found_step);

  // ---- full-footprint ledger fields -----------------------------------------
  ASSERT_EQ(report.ledger_kinds.size(),
            static_cast<std::size_t>(obs::kNumMemKinds));
  double kinds_peak_sum = 0.0;
  for (const prof::ProfileReport::LedgerKindPeak& k : report.ledger_kinds) {
    EXPECT_GE(k.peak_bytes, 0.0) << k.kind;
    // A leak-free run tears down to (near) its baseline.
    EXPECT_EQ(k.live_bytes, 0.0) << k.kind;
    kinds_peak_sum += k.peak_bytes;
  }
  EXPECT_GT(report.measured_peak_footprint_bytes, 0.0);
  // The coincident total peak can't exceed the sum of per-kind peaks.
  EXPECT_LE(report.measured_peak_footprint_bytes, kinds_peak_sum + 0.5);
  EXPECT_GT(report.max_rank_peak_footprint_bytes, 0.0);
  // Static weight/optimizer bounds exist for trainer-backed runs and cover
  // the persistent categories' peaks.
  ASSERT_GE(report.static_weights_bound_bytes, 0.0);
  ASSERT_GE(report.static_optimizer_bound_bytes, 0.0);
  for (const prof::ProfileReport::LedgerKindPeak& k : report.ledger_kinds) {
    if (k.kind == "optimizer") {
      EXPECT_LE(k.peak_bytes, report.static_optimizer_bound_bytes + 0.5);
    }
    if (k.kind == "weights") {
      EXPECT_LE(k.peak_bytes, report.static_weights_bound_bytes + 0.5);
    }
    if (k.kind == "weight_grads") {
      EXPECT_LE(k.peak_bytes, report.static_grads_bound_bytes + 0.5);
    }
  }

  // ---- per-kind wire ledger -------------------------------------------------
  ASSERT_FALSE(report.wire_kinds.empty());
  double wire_sum = 0.0;
  for (const prof::ProfileReport::WireKindVolume& w : report.wire_kinds) {
    wire_sum += w.measured_bytes;
    ASSERT_GE(w.predicted_bytes, 0.0) << w.kind;  // in the envelope
    EXPECT_EQ(w.measured_bytes, w.predicted_bytes) << w.kind;
    EXPECT_EQ(w.measured_messages, w.predicted_messages) << w.kind;
  }
  EXPECT_EQ(wire_sum, static_cast<double>(report.wire_bytes));

  // The metrics snapshot carries the new families.
  const obs::JsonParseResult metrics = obs::parse_json(report.metrics_json);
  ASSERT_TRUE(metrics.ok) << metrics.error;
  const obs::JsonValue* gauges = metrics.value.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(gauges->find("mem.ledger.total_peak_bytes"), nullptr);
  EXPECT_NE(gauges->find("mem.bound.optimizer_bytes"), nullptr);
  const obs::JsonValue* counters = metrics.value.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->find("wire.kind.F-weight.bytes"), nullptr);
}

// ---- bench trajectory -------------------------------------------------------

TEST(Bench, SmokeMatrixEmitsValidTrajectoryAndSelfCompares) {
  prof::BenchOptions options;
  options.smoke = true;
  const prof::BenchReport report = prof::run_bench(options);
  EXPECT_EQ(report.schema_version, prof::kBenchSchemaVersion);
  EXPECT_EQ(report.cases.size(), prof::canonical_bench_cases(true).size());

  const std::string json = prof::bench_report_to_json(report);
  const obs::JsonParseResult parsed = obs::parse_json(json);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.find("schema_version")->as_number(),
            static_cast<double>(prof::kBenchSchemaVersion));
  ASSERT_TRUE(parsed.value.find("cases")->is_array());

  for (const prof::BenchCaseResult& c : report.cases) {
    EXPECT_GT(c.step_seconds, 0.0) << c.strategy;
    EXPECT_GT(c.gflops, 0.0) << c.strategy;
    EXPECT_GT(c.measured_peak_footprint_bytes, 0.0) << c.strategy;
    EXPECT_GT(c.static_bound_total_bytes, 0.0) << c.strategy;
    for (const prof::BenchWireKind& w : c.wire) {
      if (w.predicted_bytes >= 0.0) {
        EXPECT_EQ(w.measured_bytes, w.predicted_bytes)
            << c.strategy << " " << w.kind;
      }
    }
  }

  // A trajectory never regresses against itself.
  EXPECT_TRUE(prof::compare_trajectories(json, json,
                                         prof::CompareThresholds::smoke())
                  .empty());
}

TEST(Bench, CompareFlagsDoctoredRegressions) {
  const char* baseline = R"({
    "schema_version": 1,
    "cases": [{"strategy": "weipipe", "ranks": 4, "recompute": false,
               "step_seconds": 0.010, "measured_peak_footprint_bytes": 1000,
               "wire": [{"kind": "F-weight", "measured_bytes": 5000,
                         "predicted_bytes": 5000}]}]
  })";
  const prof::CompareThresholds thr;  // step 50%, mem 25%, wire exact

  // Identical candidate passes.
  EXPECT_TRUE(prof::compare_trajectories(baseline, baseline, thr).empty());

  // Step-time blowup past the threshold is flagged.
  const char* slow = R"({
    "schema_version": 1,
    "cases": [{"strategy": "weipipe", "ranks": 4, "recompute": false,
               "step_seconds": 0.020, "measured_peak_footprint_bytes": 1000,
               "wire": [{"kind": "F-weight", "measured_bytes": 5000,
                         "predicted_bytes": 5000}]}]
  })";
  EXPECT_FALSE(prof::compare_trajectories(baseline, slow, thr).empty());

  // Any wire-byte drift is flagged (deterministic metric, zero tolerance),
  // as is a measured value that disagrees with its own closed form.
  const char* chatty = R"({
    "schema_version": 1,
    "cases": [{"strategy": "weipipe", "ranks": 4, "recompute": false,
               "step_seconds": 0.010, "measured_peak_footprint_bytes": 1000,
               "wire": [{"kind": "F-weight", "measured_bytes": 5001,
                         "predicted_bytes": 5000}]}]
  })";
  const std::vector<std::string> wire_regressions =
      prof::compare_trajectories(baseline, chatty, thr);
  EXPECT_EQ(wire_regressions.size(), 2u);  // vs baseline + vs closed form

  // Disjoint matrices are an error, not a silent pass.
  const char* other = R"({
    "schema_version": 1,
    "cases": [{"strategy": "fsdp", "ranks": 8, "recompute": true,
               "step_seconds": 0.010}]
  })";
  EXPECT_FALSE(prof::compare_trajectories(baseline, other, thr).empty());

  // Schema drift refuses to compare.
  const char* v2 = R"({"schema_version": 2, "cases": []})";
  EXPECT_FALSE(prof::compare_trajectories(baseline, v2, thr).empty());

  // Garbage input is reported, not crashed on.
  EXPECT_FALSE(prof::compare_trajectories(baseline, "not json", thr).empty());
}

TEST(Profile, StrategyListsAreDisjointAndComplete) {
  const std::vector<std::string> all = prof::profile_strategies();
  EXPECT_TRUE(std::count(all.begin(), all.end(), "wzb2") == 1);
  EXPECT_TRUE(prof::is_trainer_strategy("weipipe"));
  EXPECT_TRUE(prof::is_trainer_strategy("sequential"));
  EXPECT_FALSE(prof::is_trainer_strategy("wzb2"));
  EXPECT_FALSE(prof::is_trainer_strategy("nonsense"));
}

}  // namespace
}  // namespace weipipe
