// Discrete-event engine, schedule builders, topology, cost model and the
// experiment runner: structural and analytic properties.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sched/builders.hpp"
#include "sim/experiment.hpp"
#include "sched/validate.hpp"
#include "trace/timeline.hpp"

namespace weipipe {
namespace {

using sched::StrategyCosts;
using sim::Link;
using sim::Topology;

StrategyCosts unit_costs(std::int64_t p, double fwd = 1.0, double bwd = 2.0) {
  StrategyCosts c;
  for (std::int64_t i = 0; i < p; ++i) {
    c.fwd_seconds.push_back(fwd);
    c.bwd_seconds.push_back(bwd);
    c.bwd_acts_seconds.push_back(fwd);
    c.bwd_weights_seconds.push_back(bwd - fwd);
    c.chunk_weight_bytes.push_back(100.0);
    c.act_mem_bytes.push_back(10.0);
  }
  c.act_bytes = 50.0;
  c.act_grad_bytes = 50.0;
  return c;
}

Topology ideal(int p) {
  return Topology::uniform(p, Link{1e15, 0.0}, "ideal");
}

// ---- Engine basics --------------------------------------------------------------

TEST(Engine, SingleRankComputeChain) {
  sched::Program prog;
  prog.name = "chain";
  prog.rank_ops.resize(1);
  prog.rank_ops[0] = {sched::ComputeOp{sched::ComputeKind::kForward, 0, 0, 2.5,
                                       100.0},
                      sched::ComputeOp{sched::ComputeKind::kBackward, 0, 0,
                                       1.5, -100.0}};
  const sim::SimResult res = sim::simulate(prog, ideal(1));
  EXPECT_DOUBLE_EQ(res.makespan, 4.0);
  EXPECT_DOUBLE_EQ(res.busy_seconds[0], 4.0);
  EXPECT_DOUBLE_EQ(res.bubble_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(res.peak_act_bytes[0], 100.0);
}

TEST(Engine, SendRecvImposesOrdering) {
  sched::Program prog;
  prog.name = "pair";
  prog.rank_ops.resize(2);
  // Rank 0 computes 3 s then sends; rank 1 receives then computes 1 s.
  prog.rank_ops[0] = {
      sched::ComputeOp{sched::ComputeKind::kForward, 0, 0, 3.0, 0.0},
      sched::SendOp{1, 8.0, 42}};
  prog.rank_ops[1] = {
      sched::RecvOp{0, 42},
      sched::ComputeOp{sched::ComputeKind::kForward, 0, 1, 1.0, 0.0}};
  const sim::SimResult res = sim::simulate(prog, ideal(2));
  EXPECT_NEAR(res.makespan, 4.0, 1e-9);
  EXPECT_NEAR(res.p2p_bytes, 8.0, 1e-12);
}

TEST(Engine, LinkBandwidthDelaysArrival) {
  sched::Program prog;
  prog.name = "slow";
  prog.rank_ops.resize(2);
  prog.rank_ops[0] = {sched::SendOp{1, 100.0, 1}};
  prog.rank_ops[1] = {sched::RecvOp{0, 1}};
  const Topology topo = Topology::uniform(2, Link{10.0, 0.5}, "slow");
  const sim::SimResult res = sim::simulate(prog, topo);
  // 100 bytes at 10 B/s + 0.5 s latency.
  EXPECT_NEAR(res.makespan, 10.5, 1e-9);
}

TEST(Engine, LinkSerializesMessages) {
  sched::Program prog;
  prog.name = "serial";
  prog.rank_ops.resize(2);
  prog.rank_ops[0] = {sched::SendOp{1, 100.0, 1}, sched::SendOp{1, 100.0, 2}};
  prog.rank_ops[1] = {sched::RecvOp{0, 2}};
  const Topology topo = Topology::uniform(2, Link{100.0, 0.0}, "wire");
  const sim::SimResult res = sim::simulate(prog, topo);
  // Second message waits for the first on the wire: 1 s + 1 s.
  EXPECT_NEAR(res.makespan, 2.0, 1e-9);
}

TEST(Engine, BlockingSendHoldsSender) {
  sched::Program prog;
  prog.name = "blocking";
  prog.rank_ops.resize(2);
  prog.rank_ops[0] = {
      sched::SendOp{1, 100.0, 1, /*blocking=*/true},
      sched::ComputeOp{sched::ComputeKind::kForward, 0, 0, 1.0, 0.0}};
  prog.rank_ops[1] = {sched::RecvOp{0, 1}};
  const Topology topo = Topology::uniform(2, Link{100.0, 0.0}, "wire");
  const sim::SimResult res = sim::simulate(prog, topo);
  EXPECT_NEAR(res.busy_seconds[0], 1.0, 1e-9);
  EXPECT_NEAR(res.makespan, 2.0, 1e-9);  // compute starts only after transfer
}

TEST(Engine, DeadlockDetected) {
  sched::Program prog;
  prog.name = "deadlock";
  prog.rank_ops.resize(2);
  prog.rank_ops[0] = {sched::RecvOp{1, 1}};
  prog.rank_ops[1] = {sched::RecvOp{0, 1}};
  EXPECT_THROW(sim::simulate(prog, ideal(2)), Error);
}

TEST(Engine, CollectiveChannelSerializesButOverlapsCompute) {
  sched::Program prog;
  prog.name = "coll";
  prog.rank_ops.resize(1);
  prog.rank_ops[0] = {
      sched::CollectiveStartOp{0, 5.0, 100.0},
      sched::ComputeOp{sched::ComputeKind::kForward, 0, 0, 3.0, 0.0},
      sched::CollectiveWaitOp{0},
      sched::ComputeOp{sched::ComputeKind::kForward, 1, 0, 1.0, 0.0}};
  const sim::SimResult res = sim::simulate(prog, ideal(1));
  // Collective (5 s) overlaps the 3 s compute; wait tops up to 5, then +1.
  EXPECT_NEAR(res.makespan, 6.0, 1e-9);
  EXPECT_NEAR(res.collective_bytes, 100.0, 1e-12);
}

TEST(Engine, PeakMemoryTracksDeltas) {
  sched::Program prog;
  prog.name = "mem";
  prog.rank_ops.resize(1);
  prog.rank_ops[0] = {
      sched::ComputeOp{sched::ComputeKind::kForward, 0, 0, 1.0, 30.0},
      sched::ComputeOp{sched::ComputeKind::kForward, 1, 0, 1.0, 40.0},
      sched::ComputeOp{sched::ComputeKind::kBackward, 0, 0, 1.0, -30.0},
      sched::ComputeOp{sched::ComputeKind::kForward, 2, 0, 1.0, 20.0}};
  const sim::SimResult res = sim::simulate(prog, ideal(1));
  EXPECT_DOUBLE_EQ(res.peak_act_bytes[0], 70.0);
}

// ---- Builders ----------------------------------------------------------------------

class BuilderWorlds
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {};

TEST_P(BuilderWorlds, AllProgramsExecuteWithoutDeadlock) {
  const auto [p, n] = GetParam();
  const StrategyCosts costs = unit_costs(p);
  const Topology topo = ideal(static_cast<int>(p));
  const std::int64_t rounds = n / p;

  std::vector<sched::Program> programs;
  programs.push_back(sched::build_gpipe(p, n, costs));
  programs.push_back(sched::build_1f1b(p, n, costs));
  programs.push_back(
      sched::build_zero_bubble(p, n, sched::ZbVariant::kZb1, costs));
  programs.push_back(
      sched::build_zero_bubble(p, n, sched::ZbVariant::kZb2, costs));
  programs.push_back(sched::build_weipipe(
      WeiPipeSchedule(p, rounds, WeiPipeMode::kNaive), costs));
  programs.push_back(sched::build_weipipe(
      WeiPipeSchedule(p, rounds, WeiPipeMode::kInterleave), costs));
  programs.push_back(sched::build_weipipe_zero_bubble(
      p, rounds, sched::WzbVariant::kWzb1, costs));
  programs.push_back(sched::build_weipipe_zero_bubble(
      p, rounds, sched::WzbVariant::kWzb2, costs));
  sched::FsdpCollectiveCosts coll;
  for (std::int64_t c = 0; c < p; ++c) {
    coll.all_gather_seconds.push_back(0.1);
    coll.reduce_scatter_seconds.push_back(0.1);
    coll.all_gather_bytes.push_back(10.0);
    coll.reduce_scatter_bytes.push_back(10.0);
  }
  programs.push_back(sched::build_fsdp(p, rounds, costs, coll));
  programs.push_back(sched::build_fsdp(p, rounds, costs, coll,
                                       /*overlap_prefetch=*/true));

  // Compute totals: every strategy must execute the same amount of F+B work
  // per rank-equivalent (ZB splits B; FSDP replicates across ranks).
  for (const sched::Program& prog : programs) {
    const sim::SimResult res = sim::simulate(prog, topo);
    EXPECT_GT(res.makespan, 0.0) << prog.name;
    double busy = 0.0;
    for (double b : res.busy_seconds) {
      busy += b;
    }
    EXPECT_GT(busy, 0.0) << prog.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, BuilderWorlds,
                         ::testing::Values(std::make_pair(2L, 4L),
                                           std::make_pair(4L, 4L),
                                           std::make_pair(4L, 8L),
                                           std::make_pair(4L, 16L),
                                           std::make_pair(8L, 16L)));

TEST(Builders, BubbleHierarchyMatchesPaperTheory) {
  // Under T_B = 2 T_F: naive >> interleave ~= 1f1b > zb1 > zb2; WZBs lowest.
  const std::int64_t p = 8;
  const std::int64_t n = 64;
  const StrategyCosts costs = unit_costs(p);
  const Topology topo = ideal(8);
  auto bubble = [&](const sched::Program& prog) {
    return sim::simulate(prog, topo).bubble_ratio();
  };
  const double naive = bubble(sched::build_weipipe(
      WeiPipeSchedule(p, n / p, WeiPipeMode::kNaive), costs));
  const double inter = bubble(sched::build_weipipe(
      WeiPipeSchedule(p, n / p, WeiPipeMode::kInterleave), costs));
  const double f1b = bubble(sched::build_1f1b(p, n, costs));
  const double zb1 = bubble(
      sched::build_zero_bubble(p, n, sched::ZbVariant::kZb1, costs));
  const double zb2 = bubble(
      sched::build_zero_bubble(p, n, sched::ZbVariant::kZb2, costs));
  const double wzb1 = bubble(sched::build_weipipe_zero_bubble(
      p, n / p, sched::WzbVariant::kWzb1, costs));
  const double wzb2 = bubble(sched::build_weipipe_zero_bubble(
      p, n / p, sched::WzbVariant::kWzb2, costs));

  EXPECT_GT(naive, inter + 0.05);   // interleave halves the naive bubble
  EXPECT_NEAR(inter, f1b, 0.02);    // paper: similar bubble ratios
  EXPECT_LE(zb1, f1b);
  EXPECT_LE(zb2, zb1 + 1e-9);
  EXPECT_LE(wzb1, inter);
  EXPECT_LT(wzb2, 0.05);  // "almost zero bubble"
}

TEST(Builders, ZbMemoryCapsDiffer) {
  const std::int64_t p = 4;
  const std::int64_t n = 16;
  const StrategyCosts costs = unit_costs(p);
  const Topology topo = ideal(4);
  const sim::SimResult zb1 = sim::simulate(
      sched::build_zero_bubble(p, n, sched::ZbVariant::kZb1, costs), topo);
  const sim::SimResult zb2 = sim::simulate(
      sched::build_zero_bubble(p, n, sched::ZbVariant::kZb2, costs), topo);
  // ZB2 admits ~2x the in-flight microbatches (paper: ~2x activation memory).
  EXPECT_GT(zb2.max_peak_act_bytes(), 1.5 * zb1.max_peak_act_bytes());
}

TEST(Builders, WeiPipeCostsMustMatchWorkerCount) {
  const StrategyCosts costs = unit_costs(4);
  EXPECT_THROW(sched::build_weipipe(
                   WeiPipeSchedule(8, 2, WeiPipeMode::kInterleave), costs),
               Error);
}

TEST(Builders, WeiPipePrefetchAblationIsSlowerOnRealLinks) {
  const std::int64_t p = 4;
  const StrategyCosts costs = unit_costs(p);
  const Topology slow = Topology::uniform(4, Link{300.0, 0.0}, "slow");
  const WeiPipeSchedule sched(p, 4, WeiPipeMode::kInterleave);
  const double with =
      sim::simulate(sched::build_weipipe(sched, costs, true), slow).makespan;
  const double without =
      sim::simulate(sched::build_weipipe(sched, costs, false), slow).makespan;
  EXPECT_GT(without, with);  // blocking sends expose the transfers
}

TEST(Engine, RecordsCarryMemoryLevels) {
  sched::Program prog;
  prog.name = "mem-records";
  prog.rank_ops.resize(1);
  prog.rank_ops[0] = {
      sched::ComputeOp{sched::ComputeKind::kForward, 0, 0, 1.0, 10.0},
      sched::ComputeOp{sched::ComputeKind::kBackward, 0, 0, 1.0, -10.0}};
  const sim::SimResult res = sim::simulate(prog, ideal(1), {.record_ops = true});
  ASSERT_EQ(res.records.size(), 2u);
  EXPECT_DOUBLE_EQ(res.records[0].act_bytes_after, 10.0);
  EXPECT_DOUBLE_EQ(res.records[1].act_bytes_after, 0.0);
}

// ---- Topology ------------------------------------------------------------------------

TEST(Topology, HierarchicalLinkSelection) {
  const Topology topo = Topology::hierarchical(8, 4, Link{100.0, 0.0},
                                               Link{1.0, 0.1}, "test");
  EXPECT_EQ(topo.link(0, 3).bandwidth, 100.0);
  EXPECT_EQ(topo.link(3, 4).bandwidth, 1.0);  // crosses node boundary
  EXPECT_EQ(topo.link(4, 7).bandwidth, 100.0);
  EXPECT_EQ(topo.link(7, 0).bandwidth, 1.0);  // ring wrap crosses nodes
  EXPECT_EQ(topo.bottleneck_ring_link().bandwidth, 1.0);
  EXPECT_TRUE(topo.has_internode_hops());
  EXPECT_EQ(topo.nodes(), 2);
}

TEST(Topology, SingleNodeHasNoInternodeHops) {
  const Topology topo = Topology::nvlink(8, 8);
  EXPECT_FALSE(topo.has_internode_hops());
  EXPECT_EQ(topo.nodes(), 1);
  EXPECT_EQ(topo.bottleneck_ring_link().bandwidth, sim::kNvlinkA800Bw);
}

TEST(Topology, PaperEnvironments) {
  const Topology t2 = Topology::nvlink(16, 8);
  EXPECT_EQ(t2.nodes(), 2);
  EXPECT_LT(t2.bottleneck_ring_link().bandwidth, sim::kNvlinkA800Bw);
  const Topology t3 = Topology::pcie_ethernet(16, 4);
  EXPECT_EQ(t3.nodes(), 4);
  EXPECT_EQ(t3.link(0, 1).bandwidth, sim::kPcie4Bw);
  EXPECT_EQ(t3.link(3, 4).bandwidth, sim::kEth10GBw);
}

// ---- Cost model -------------------------------------------------------------------------

TEST(CostModel, ParamsPerLayerNear12H2) {
  sim::ModelDims dims;
  dims.hidden = 2048;
  const double ratio =
      static_cast<double>(dims.params_per_layer()) / (12.0 * 2048 * 2048);
  EXPECT_NEAR(ratio, 1.0, 0.02);
}

TEST(CostModel, BalancedLayersSumToL) {
  sim::ModelDims dims;
  dims.layers = 32;
  const sim::CostModel cm(dims, {}, {});
  for (std::int64_t p : {1, 2, 4, 8, 16, 32}) {
    const auto layers = cm.balanced_layers(p);
    std::int64_t total = 0;
    for (std::int64_t l : layers) {
      total += l;
    }
    EXPECT_EQ(total, 32) << "p=" << p;
    // The head-bearing last chunk never carries more layers than the others.
    std::int64_t max_other = 0;
    for (std::size_t c = 0; c + 1 < layers.size(); ++c) {
      max_other = std::max(max_other, layers[c]);
    }
    if (p > 1) {
      EXPECT_LE(layers.back(), max_other);
    }
  }
}

TEST(CostModel, RecomputeShrinksActMemory) {
  sim::ModelDims dims;
  const sim::CostModel with(dims, {}, {true, true});
  const sim::CostModel without(dims, {}, {false, true});
  EXPECT_LT(with.act_mem_layer_bytes(), 0.25 * without.act_mem_layer_bytes());
}

TEST(CostModel, FlashRemovesQuadraticTerm) {
  sim::ModelDims dims;
  dims.seq = 16384;
  const sim::CostModel flash(dims, {}, {false, true});
  const sim::CostModel noflash(dims, {}, {false, false});
  EXPECT_GT(noflash.act_mem_layer_bytes(), 4.0 * flash.act_mem_layer_bytes());
}

TEST(CostModel, WeightBytesIndependentOfSeqAndBatch) {
  sim::ModelDims a;
  a.seq = 4096;
  a.microbatch = 16;
  sim::ModelDims b;
  b.seq = 16384;
  b.microbatch = 1;
  const sim::CostModel cma(a, {}, {});
  const sim::CostModel cmb(b, {}, {});
  for (std::int64_t c = 0; c < 4; ++c) {
    EXPECT_EQ(cma.chunk_weight_bytes(c, 4), cmb.chunk_weight_bytes(c, 4));
  }
}

TEST(CostModel, EffectiveFlopsRollsOffAtSmallBatch) {
  sim::GpuSpec gpu;
  EXPECT_LT(gpu.effective_flops(1), gpu.effective_flops(4));
  EXPECT_LT(gpu.effective_flops(4), gpu.effective_flops(16));
  EXPECT_NEAR(gpu.effective_flops(1000), gpu.peak_flops * gpu.mfu,
              0.01 * gpu.peak_flops);
}

// ---- Experiment runner ---------------------------------------------------------------------

TEST(Experiment, RunsEveryStrategy) {
  for (auto s :
       {sim::Strategy::k1F1B, sim::Strategy::kGPipe, sim::Strategy::kZB1,
        sim::Strategy::kZB2, sim::Strategy::kFSDP,
        sim::Strategy::kWeiPipeNaive, sim::Strategy::kWeiPipeInterleave,
        sim::Strategy::kWZB1, sim::Strategy::kWZB2}) {
    sim::ExperimentConfig cfg;
    cfg.dims.hidden = 512;
    cfg.dims.seq = 1024;
    cfg.dims.microbatch = 2;
    cfg.dims.layers = 8;
    cfg.dims.heads = 8;
    cfg.num_microbatches = 16;
    cfg.strategy = s;
    const auto res = run_experiment(cfg, Topology::nvlink(4, 8));
    EXPECT_GT(res.tokens_per_second_per_gpu, 0.0) << sim::to_string(s);
    EXPECT_GT(res.peak_mem_bytes, 0.0) << sim::to_string(s);
  }
}

TEST(Experiment, OomFlagRespondsToGpuMemory) {
  sim::ExperimentConfig cfg;
  cfg.dims.hidden = 4096;
  cfg.dims.seq = 16384;
  cfg.dims.microbatch = 4;
  cfg.dims.layers = 32;
  cfg.strategy = sim::Strategy::kZB2;  // hungriest strategy
  const auto big = run_experiment(cfg, Topology::nvlink(16, 8));
  EXPECT_TRUE(big.oom);
  cfg.gpu.mem_bytes = 1e12;  // a fictitious 1 TB GPU
  const auto huge = run_experiment(cfg, Topology::nvlink(16, 8));
  EXPECT_FALSE(huge.oom);
}

TEST(Experiment, WeiPipeThroughputIndependentOfWireForSmallModels) {
  // A tiny model on huge links: naive vs interleave differ only by bubbles.
  sim::ExperimentConfig cfg;
  cfg.dims.hidden = 512;
  cfg.dims.seq = 1024;
  cfg.dims.microbatch = 4;
  cfg.dims.layers = 8;
  cfg.dims.heads = 8;
  cfg.num_microbatches = 32;
  cfg.strategy = sim::Strategy::kWeiPipeInterleave;
  const auto inter = run_experiment(cfg, Topology::nvlink(4, 8));
  cfg.strategy = sim::Strategy::kWeiPipeNaive;
  const auto naive = run_experiment(cfg, Topology::nvlink(4, 8));
  EXPECT_GT(inter.tokens_per_second_per_gpu,
            1.2 * naive.tokens_per_second_per_gpu);
}

// ---- Program validation ---------------------------------------------------------------

TEST(Validate, AllBuiltProgramsAreWellFormed) {
  const std::int64_t p = 4;
  const std::int64_t n = 8;
  const StrategyCosts costs = unit_costs(p);
  sched::FsdpCollectiveCosts coll;
  for (std::int64_t c = 0; c < p; ++c) {
    coll.all_gather_seconds.push_back(0.1);
    coll.reduce_scatter_seconds.push_back(0.1);
    coll.all_gather_bytes.push_back(10.0);
    coll.reduce_scatter_bytes.push_back(10.0);
  }
  const sched::Program programs[] = {
      sched::build_gpipe(p, n, costs),
      sched::build_1f1b(p, n, costs),
      sched::build_zero_bubble(p, n, sched::ZbVariant::kZb1, costs),
      sched::build_zero_bubble(p, n, sched::ZbVariant::kZb2, costs),
      sched::build_weipipe(WeiPipeSchedule(p, 2, WeiPipeMode::kNaive), costs),
      sched::build_weipipe(WeiPipeSchedule(p, 2, WeiPipeMode::kInterleave),
                           costs),
      sched::build_weipipe_zero_bubble(p, 2, sched::WzbVariant::kWzb1, costs),
      sched::build_weipipe_zero_bubble(p, 2, sched::WzbVariant::kWzb2, costs),
      sched::build_fsdp(p, 2, costs, coll),
  };
  for (const sched::Program& prog : programs) {
    const sched::ValidationReport report = sched::validate(prog);
    EXPECT_TRUE(report.ok) << prog.name << ": "
                           << (report.problems.empty()
                                   ? ""
                                   : report.problems.front());
  }
}

TEST(Validate, DetectsUnmatchedMessages) {
  sched::Program prog;
  prog.name = "bad";
  prog.rank_ops.resize(2);
  prog.rank_ops[0] = {sched::SendOp{1, 4.0, 7}, sched::SendOp{1, 4.0, 7}};
  prog.rank_ops[1] = {sched::RecvOp{0, 7}};
  const auto report = sched::validate(prog);
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.problems.empty());
  EXPECT_NE(report.problems.front().find("unreceived"), std::string::npos);
}

TEST(Validate, DetectsSelfSendAndBadRank) {
  sched::Program prog;
  prog.name = "bad2";
  prog.rank_ops.resize(1);
  prog.rank_ops[0] = {sched::SendOp{0, 1.0, 1}, sched::SendOp{9, 1.0, 1}};
  const auto report = sched::validate(prog);
  EXPECT_FALSE(report.ok);
  EXPECT_GE(report.problems.size(), 2u);
}

TEST(Validate, DetectsMemoryLeakAndBadWait) {
  sched::Program prog;
  prog.name = "bad3";
  prog.rank_ops.resize(1);
  prog.rank_ops[0] = {
      sched::ComputeOp{sched::ComputeKind::kForward, 0, 0, 1.0, 42.0},
      sched::CollectiveWaitOp{5}};
  const auto report = sched::validate(prog);
  EXPECT_FALSE(report.ok);
  EXPECT_GE(report.problems.size(), 2u);  // leaked bytes + unposted wait
}

// ---- Trace ------------------------------------------------------------------------------------

TEST(Trace, TimelineRendersEveryRank) {
  const std::int64_t p = 4;
  const StrategyCosts costs = unit_costs(p);
  const sched::Program prog = sched::build_weipipe(
      WeiPipeSchedule(p, 2, WeiPipeMode::kInterleave), costs);
  const sim::SimResult res =
      sim::simulate(prog, ideal(4), {.record_ops = true});
  const std::string timeline = trace::render_timeline(res, {.width = 60});
  EXPECT_NE(timeline.find("rank 0"), std::string::npos);
  EXPECT_NE(timeline.find("rank 3"), std::string::npos);
  EXPECT_NE(timeline.find("bubble"), std::string::npos);
  const std::string util = trace::render_utilization(res);
  EXPECT_NE(util.find("idle%"), std::string::npos);
}

TEST(Trace, RequiresRecordedOps) {
  const StrategyCosts costs = unit_costs(2);
  const sched::Program prog = sched::build_1f1b(2, 2, costs);
  const sim::SimResult res = sim::simulate(prog, ideal(2));  // no records
  EXPECT_THROW(trace::render_timeline(res), Error);
}

}  // namespace
}  // namespace weipipe
