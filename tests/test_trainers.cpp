// Trainer-level behaviours beyond raw equivalence: construction validation,
// loss/statistics reporting, multi-iteration data streaming, link-model
// runs, and a broad parameterized equivalence sweep across shapes.
#include <gtest/gtest.h>

#include "baselines/fsdp_trainer.hpp"
#include "baselines/pipeline_trainer.hpp"
#include "core/sequential_trainer.hpp"
#include "core/weipipe_trainer.hpp"

namespace weipipe {
namespace {

TrainConfig base_config() {
  TrainConfig cfg;
  cfg.model.vocab_size = 32;
  cfg.model.dim = 16;
  cfg.model.n_layers = 4;
  cfg.model.n_heads = 2;
  cfg.model.seq_len = 8;
  cfg.num_microbatches = 8;
  cfg.microbatch_size = 1;
  cfg.seq_len = 8;
  cfg.seed = 404;
  return cfg;
}

float params_max_diff(const std::vector<std::vector<float>>& a,
                      const std::vector<std::vector<float>>& b) {
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      m = std::max(m, std::fabs(a[i][j] - b[i][j]));
    }
  }
  return m;
}

// ---- construction validation --------------------------------------------------

TEST(TrainerValidation, WeiPipeRejectsBadShapes) {
  const TrainConfig cfg = base_config();  // N=8, L=4
  EXPECT_THROW(WeiPipeTrainer(cfg, 1), Error);   // ring of one
  EXPECT_THROW(WeiPipeTrainer(cfg, 3), Error);   // 8 % 3 != 0
  EXPECT_THROW(WeiPipeTrainer(cfg, 8), Error);   // more workers than layers
}

TEST(TrainerValidation, PipelineRejectsBadShapes) {
  const TrainConfig cfg = base_config();
  EXPECT_THROW(PipelineTrainer(cfg, 1), Error);
  EXPECT_THROW(PipelineTrainer(cfg, 5), Error);  // 5 stages > 4 layers
}

TEST(TrainerValidation, FsdpRejectsBadShapes) {
  const TrainConfig cfg = base_config();
  EXPECT_THROW(FsdpTrainer(cfg, 1), Error);
  EXPECT_THROW(FsdpTrainer(cfg, 3), Error);  // 8 % 3 != 0
}

TEST(TrainerValidation, ConfigValidationFires) {
  TrainConfig cfg = base_config();
  cfg.seq_len = 100;  // exceeds model.seq_len
  EXPECT_THROW(SequentialTrainer{cfg}, Error);
  TrainConfig cfg2 = base_config();
  cfg2.model.dim = 10;  // not divisible by heads
  EXPECT_THROW(SequentialTrainer{cfg2}, Error);
}

// ---- reporting -------------------------------------------------------------------

TEST(TrainerReporting, NamesIdentifyStrategies) {
  const TrainConfig cfg = base_config();
  EXPECT_EQ(SequentialTrainer(cfg).name(), "sequential");
  EXPECT_EQ(WeiPipeTrainer(cfg, 4).name(), "weipipe-interleave");
  EXPECT_EQ(WeiPipeTrainer(cfg, 4, {.mode = WeiPipeMode::kNaive}).name(),
            "weipipe-naive");
  EXPECT_EQ(WeiPipeTrainer(cfg, 2, {.dp_degree = 2}).name(),
            "weipipe-interleave-dp2");
  EXPECT_EQ(PipelineTrainer(cfg, 4).name(), "1f1b");
  EXPECT_EQ(PipelineTrainer(cfg, 4, {.mode = PipelineMode::kGPipe}).name(),
            "gpipe");
  EXPECT_EQ(FsdpTrainer(cfg, 4).name(), "fsdp");
}

TEST(TrainerReporting, IterationStatsPopulated) {
  const TrainConfig cfg = base_config();
  WeiPipeTrainer t(cfg, 4);
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  const IterationResult r = t.train_iteration(data, 0);
  EXPECT_GT(r.mean_loss, 0.0f);
  EXPECT_LT(r.mean_loss, 2.0f * std::log(static_cast<float>(
                                    cfg.model.vocab_size)));
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_GT(r.wire_bytes, 0u);
  EXPECT_GT(r.wire_messages, 0u);
}

TEST(TrainerReporting, SequentialMovesNoBytes) {
  const TrainConfig cfg = base_config();
  SequentialTrainer t(cfg);
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  EXPECT_EQ(t.train_iteration(data, 0).wire_bytes, 0u);
}

TEST(TrainerReporting, LossDependsOnIterationIndex) {
  // The stream index advances with the iteration: same trainer state, two
  // different iteration indices => different data => different loss.
  const TrainConfig cfg = base_config();
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  SequentialTrainer a(cfg);
  SequentialTrainer b(cfg);
  const float la = a.train_iteration(data, 0).mean_loss;
  const float lb = b.train_iteration(data, 17).mean_loss;
  EXPECT_NE(la, lb);
}

// ---- throttled links keep exactness ------------------------------------------------

TEST(TrainerLinks, ThrottledFabricChangesTimingNotMath) {
  const TrainConfig cfg = base_config();
  SequentialTrainer ref(cfg);
  WeiPipeTrainer slow(cfg, 4,
                      {.link_model = comm::uniform_link(5e6, 1e-4)});
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  (void)ref.train_iteration(data, 0);
  (void)slow.train_iteration(data, 0);
  EXPECT_EQ(params_max_diff(ref.gather_block_params(),
                            slow.gather_block_params()),
            0.0f);
}

// ---- parameterized equivalence sweep -------------------------------------------------

struct SweepCase {
  std::int64_t layers;
  std::int64_t workers;
  std::int64_t n_mb;
  std::int64_t g;
  std::int64_t s;
  WeiPipeMode mode;
};

class WeiPipeSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(WeiPipeSweep, MatchesSequentialBitwise) {
  const SweepCase c = GetParam();
  TrainConfig cfg = base_config();
  cfg.model.n_layers = c.layers;
  cfg.num_microbatches = c.n_mb;
  cfg.microbatch_size = c.g;
  cfg.model.seq_len = c.s;
  cfg.seq_len = c.s;
  SequentialTrainer ref(cfg);
  WeiPipeTrainer t(cfg, c.workers, {.mode = c.mode});
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  for (int it = 0; it < 2; ++it) {
    (void)ref.train_iteration(data, it);
    (void)t.train_iteration(data, it);
  }
  EXPECT_EQ(params_max_diff(ref.gather_block_params(),
                            t.gather_block_params()),
            0.0f)
      << "L=" << c.layers << " P=" << c.workers << " N=" << c.n_mb;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WeiPipeSweep,
    ::testing::Values(
        SweepCase{2, 2, 2, 1, 4, WeiPipeMode::kInterleave},
        SweepCase{2, 2, 6, 2, 8, WeiPipeMode::kInterleave},
        SweepCase{4, 2, 4, 1, 8, WeiPipeMode::kInterleave},
        SweepCase{4, 4, 8, 2, 8, WeiPipeMode::kInterleave},
        SweepCase{6, 3, 9, 1, 4, WeiPipeMode::kInterleave},
        SweepCase{6, 6, 6, 1, 4, WeiPipeMode::kInterleave},
        SweepCase{5, 5, 10, 1, 4, WeiPipeMode::kInterleave},
        SweepCase{8, 4, 8, 1, 4, WeiPipeMode::kInterleave},
        SweepCase{2, 2, 4, 1, 4, WeiPipeMode::kNaive},
        SweepCase{4, 4, 8, 1, 4, WeiPipeMode::kNaive},
        SweepCase{6, 3, 6, 2, 8, WeiPipeMode::kNaive},
        SweepCase{5, 5, 5, 1, 4, WeiPipeMode::kNaive}));

class BaselineSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BaselineSweep, PipelineAndFsdpAcrossWorldSizes) {
  const std::int64_t p = GetParam();
  TrainConfig cfg = base_config();
  cfg.model.n_layers = 4;
  cfg.num_microbatches = 8;
  SequentialTrainer ref(cfg);
  PipelineTrainer pipe(cfg, p);
  FsdpTrainer fsdp(cfg, p);
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  (void)ref.train_iteration(data, 0);
  (void)pipe.train_iteration(data, 0);
  (void)fsdp.train_iteration(data, 0);
  EXPECT_EQ(params_max_diff(ref.gather_block_params(),
                            pipe.gather_block_params()),
            0.0f);
  EXPECT_LT(params_max_diff(ref.gather_block_params(),
                            fsdp.gather_block_params()),
            2e-5f);
}

INSTANTIATE_TEST_SUITE_P(Worlds, BaselineSweep, ::testing::Values(2L, 4L));

// ---- multi-iteration convergence across strategies -----------------------------------

TEST(TrainerConvergence, AllStrategiesReachTheSameLowLoss) {
  TrainConfig cfg = base_config();
  cfg.adam.lr = 5e-3f;
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  WeiPipeTrainer wp(cfg, 4);
  PipelineTrainer pipe(cfg, 4);
  float wp_loss = 0.0f;
  float pipe_loss = 0.0f;
  for (int it = 0; it < 25; ++it) {
    wp_loss = wp.train_iteration(data, it).mean_loss;
    pipe_loss = pipe.train_iteration(data, it).mean_loss;
  }
  EXPECT_EQ(wp_loss, pipe_loss);  // identical trajectories in fp32
  EXPECT_LT(wp_loss, std::log(static_cast<float>(cfg.model.vocab_size)));
}

// ---- int8 weight-gradient wire: convergence differ ----------------------------

TEST(TrainerConvergence, Int8GradientWireTracksTheFp32Wire) {
  // The block-quantized int8 D wire (per-64-element fp32 scales, fp32
  // accumulation on the owner) is a lossy knob: the differ proves it is
  // genuinely lossy (nonzero drift — the test would be vacuous otherwise)
  // yet training stays on the fp32-wire trajectory within tolerance.
  TrainConfig cfg = base_config();
  cfg.adam.lr = 5e-3f;
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  WeiPipeTrainer fp32_wire(cfg, 4);
  TrainConfig cfg_int8 = cfg;
  cfg_int8.precision.weight_grads = WirePrecision::Int8;
  WeiPipeTrainer int8_wire(cfg_int8, 4);
  float fp32_loss = 0.0f;
  float int8_loss = 0.0f;
  for (int it = 0; it < 12; ++it) {
    fp32_loss = fp32_wire.train_iteration(data, it).mean_loss;
    int8_loss = int8_wire.train_iteration(data, it).mean_loss;
  }
  const float drift = params_max_diff(fp32_wire.gather_block_params(),
                                      int8_wire.gather_block_params());
  EXPECT_GT(drift, 0.0f);     // the int8 wire really quantizes
  EXPECT_LT(drift, 0.05f);    // ...but the trajectory stays close
  EXPECT_NEAR(int8_loss, fp32_loss, 0.05f);
  EXPECT_LT(int8_loss, std::log(static_cast<float>(cfg.model.vocab_size)));
}

}  // namespace
}  // namespace weipipe
