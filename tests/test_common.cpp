// common/ substrate: thread pool semantics, deterministic RNG, error macros,
// logging levels.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <thread>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"

namespace weipipe {
namespace {

// ---- check macros -------------------------------------------------------------

TEST(Check, ThrowsWithExpressionAndLocation) {
  try {
    WEIPIPE_CHECK(1 == 2);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Check, MessageVariantStreamsValues) {
  try {
    const int x = 41;
    WEIPIPE_CHECK_MSG(x == 42, "x=" << x);
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("x=41"), std::string::npos);
  }
}

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(WEIPIPE_CHECK(true));
  EXPECT_NO_THROW(WEIPIPE_CHECK_MSG(2 + 2 == 4, "math"));
}

// ---- logging --------------------------------------------------------------------

TEST(Log, LevelGate) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // These must not crash (output goes to stderr when enabled).
  WEIPIPE_DEBUG("invisible " << 1);
  WEIPIPE_ERROR("visible " << 2);
  set_log_level(prev);
}

// ---- RNG -------------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
  Rng c(8);
  EXPECT_NE(Rng(7).next_u64(), c.next_u64());
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng root(42);
  Rng s0 = root.fork(0);
  Rng s1 = root.fork(1);
  EXPECT_NE(s0.next_u64(), s1.next_u64());
  // Forking is const: root unchanged by forking.
  Rng root2(42);
  EXPECT_EQ(root.next_u64(), root2.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const float v = rng.uniform(-2.0f, 5.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 5.0f);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NextBelowBounded) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit over 1000 draws
}

// ---- thread pool -------------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  std::atomic<int> count{0};
  parallel_for(5, 5, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  parallel_for(0, 1, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ExceptionPropagates) {
  EXPECT_THROW(
      parallel_for(0, 256,
                   [&](std::size_t i) {
                     if (i == 77) {
                       WEIPIPE_CHECK_MSG(false, "boom at " << i);
                     }
                   }),
      Error);
}

TEST(ThreadPool, NestedCallsRunSerially) {
  // A parallel_for from inside a pool task must not deadlock.
  std::atomic<int> total{0};
  parallel_for(0, 8, [&](std::size_t) {
    parallel_for(0, 8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ConcurrentCallersFromManyThreads) {
  // Simulates the fabric situation: P rank threads all using the global pool.
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int rep = 0; rep < 5; ++rep) {
        parallel_for(0, 100, [&](std::size_t) { total.fetch_add(1); });
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(total.load(), 6 * 5 * 100);
}

TEST(ThreadPool, DedicatedPoolRunsWork) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> sum{0};
  pool.parallel_for(0, 50, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 49 * 50 / 2);
}

TEST(ThreadPool, GrainIsAFloorOnChunkSize) {
  // Every claimed block must span at least `grain` indices (except the final
  // remainder) — a matmul_bt with tiny n must not fan out into per-row tasks.
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::size_t> block_sizes;
  const std::size_t grain = 17;
  pool.for_range(
      0, 100,
      [&](std::size_t lo, std::size_t hi) {
        std::lock_guard<std::mutex> lk(mu);
        block_sizes.push_back(hi - lo);
      },
      grain);
  std::size_t total = 0;
  std::size_t small_blocks = 0;
  for (std::size_t s : block_sizes) {
    total += s;
    if (s < grain) {
      ++small_blocks;
    }
  }
  EXPECT_EQ(total, 100u);
  EXPECT_LE(small_blocks, 1u);  // only the remainder may be short
}

TEST(ThreadPool, RangeAtOrBelowGrainRunsInOneBlock) {
  ThreadPool pool(3);
  std::atomic<int> blocks{0};
  pool.for_range(
      0, 64, [&](std::size_t, std::size_t) { blocks.fetch_add(1); },
      /*grain=*/64);
  EXPECT_EQ(blocks.load(), 1);
}

TEST(ThreadPool, StatsCountDispatchesAndItems) {
  ThreadPool pool(2);
  const ThreadPoolStats before = pool.stats();
  // Small range with grain >= n runs serially.
  pool.for_range(0, 4, [](std::size_t, std::size_t) {}, /*grain=*/8);
  // Large range with grain 1 dispatches through the arena.
  std::atomic<int> count{0};
  pool.for_range(
      0, 1000, [&](std::size_t lo, std::size_t hi) {
        count.fetch_add(static_cast<int>(hi - lo));
      },
      /*grain=*/1);
  const ThreadPoolStats after = pool.stats();
  EXPECT_EQ(count.load(), 1000);
  EXPECT_EQ(after.serial_runs - before.serial_runs, 1u);
  EXPECT_EQ(after.dispatches - before.dispatches, 1u);
  EXPECT_EQ(after.items - before.items, 1000u);
  EXPECT_GE(after.chunks - before.chunks, 1u);
  EXPECT_LE(after.steals, after.chunks);
}

TEST(ThreadPool, FreeParallelForHonorsGrainSerially) {
  // The free function must run serially (no pool hand-off) when the whole
  // range fits one grain-sized chunk.
  const ThreadPoolStats before = ThreadPool::global().stats();
  int count = 0;  // non-atomic: safe only if truly serial
  parallel_for(0, 32, [&](std::size_t) { ++count; }, /*grain=*/32);
  const ThreadPoolStats after = ThreadPool::global().stats();
  EXPECT_EQ(count, 32);
  EXPECT_EQ(after.dispatches - before.dispatches, 0u);
}

// ---- stopwatch ------------------------------------------------------------------------

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(sw.milliseconds(), 15.0);
  EXPECT_LT(sw.seconds(), 5.0);
  sw.reset();
  EXPECT_LT(sw.milliseconds(), 15.0);
}

}  // namespace
}  // namespace weipipe
