// Shared numeric-gradient checking utilities for the nn tests.
#pragma once

#include <cmath>
#include <functional>
#include <span>
#include <vector>

namespace weipipe::testing {

// Central-difference gradient of scalar-valued f at x.
inline std::vector<double> numeric_gradient(
    const std::function<double(std::span<const float>)>& f,
    std::span<float> x, double eps = 1e-3) {
  std::vector<double> grad(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float saved = x[i];
    x[i] = static_cast<float>(saved + eps);
    const double hi = f(x);
    x[i] = static_cast<float>(saved - eps);
    const double lo = f(x);
    x[i] = saved;
    grad[i] = (hi - lo) / (2.0 * eps);
  }
  return grad;
}

// Relative error between analytic and numeric gradients, max over elements.
inline double gradient_max_rel_error(std::span<const float> analytic,
                                     std::span<const double> numeric) {
  double worst = 0.0;
  for (std::size_t i = 0; i < analytic.size(); ++i) {
    const double a = analytic[i];
    const double n = numeric[i];
    const double denom = std::max(1.0, std::max(std::fabs(a), std::fabs(n)));
    worst = std::max(worst, std::fabs(a - n) / denom);
  }
  return worst;
}

}  // namespace weipipe::testing
