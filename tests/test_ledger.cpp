// Memory-ledger tests: allocator charge/credit symmetry, scope attribution,
// MemCharge lifecycle, peak tracking, and — the property everything else
// rides on — exact balance: constructing, training, and destroying any
// trainer returns every category to its pre-construction live bytes (no
// leaked charges, no double credits), including the fabric's mailbox
// residency.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "baselines/factory.hpp"
#include "comm/fabric.hpp"
#include "core/trainer.hpp"
#include "nn/microbatch.hpp"
#include "obs/ledger.hpp"
#include "tensor/tensor.hpp"

namespace weipipe {
namespace {

using obs::MemCharge;
using obs::MemKind;
using obs::MemScope;

// Enables the ledger for one test and restores the previous state.
class LedgerOn {
 public:
  LedgerOn() : prev_(obs::ledger().enabled()) {
    obs::ledger().set_enabled(true);
  }
  ~LedgerOn() { obs::ledger().set_enabled(prev_); }

 private:
  bool prev_;
};

using TrackedVec = std::vector<float, obs::TrackedAllocator<float>>;

TEST(Ledger, TrackedAllocationChargesAndCreditsItsScope) {
  LedgerOn on;
  const std::int64_t before = obs::ledger().live_bytes(MemKind::kWeights);
  {
    MemScope scope(MemKind::kWeights);
    TrackedVec v(1024);
    EXPECT_GE(obs::ledger().live_bytes(MemKind::kWeights),
              before + 1024 * static_cast<std::int64_t>(sizeof(float)));
  }
  EXPECT_EQ(obs::ledger().live_bytes(MemKind::kWeights), before);
}

TEST(Ledger, DefaultCategoryIsScratch) {
  LedgerOn on;
  EXPECT_EQ(obs::current_mem_kind(), MemKind::kScratch);
  const std::int64_t before = obs::ledger().live_bytes(MemKind::kScratch);
  TrackedVec v(256);
  EXPECT_GT(obs::ledger().live_bytes(MemKind::kScratch), before);
  {
    MemScope scope(MemKind::kActivations);
    EXPECT_EQ(obs::current_mem_kind(), MemKind::kActivations);
    {
      MemScope inner(MemKind::kOptimizer);
      EXPECT_EQ(obs::current_mem_kind(), MemKind::kOptimizer);
    }
    EXPECT_EQ(obs::current_mem_kind(), MemKind::kActivations);
  }
  EXPECT_EQ(obs::current_mem_kind(), MemKind::kScratch);
}

TEST(Ledger, FreeAfterScopeCloseCreditsTheChargedKind) {
  // The header records the charge at allocation time, so the credit lands on
  // the right category no matter where the buffer dies.
  LedgerOn on;
  const std::int64_t before = obs::ledger().live_bytes(MemKind::kOptimizer);
  TrackedVec v;
  {
    MemScope scope(MemKind::kOptimizer);
    v.resize(512);
  }
  EXPECT_GT(obs::ledger().live_bytes(MemKind::kOptimizer), before);
  v = TrackedVec();  // freed outside the scope
  EXPECT_EQ(obs::ledger().live_bytes(MemKind::kOptimizer), before);
}

TEST(Ledger, DisabledLedgerChargesNothing) {
  obs::ledger().set_enabled(false);
  const std::int64_t before = obs::ledger().total_live_bytes();
  MemScope scope(MemKind::kWeights);
  TrackedVec v(4096);
  MemCharge charge(MemKind::kOptimizer, 1 << 20);
  EXPECT_EQ(obs::ledger().total_live_bytes(), before);
  EXPECT_EQ(charge.bytes(), 0);
}

TEST(Ledger, ChargeSurvivesDisableBetweenAllocAndFree) {
  // Disabling mid-flight must not unbalance the books: whatever was charged
  // is credited on free via the recorded header/charge state.
  LedgerOn on;
  const std::int64_t before = obs::ledger().live_bytes(MemKind::kWeights);
  {
    MemScope scope(MemKind::kWeights);
    TrackedVec v(1024);
    MemCharge charge(MemKind::kWeights, 4096);
    obs::ledger().set_enabled(false);
  }
  obs::ledger().set_enabled(true);
  EXPECT_EQ(obs::ledger().live_bytes(MemKind::kWeights), before);
}

TEST(Ledger, MemChargeSetResizeRelease) {
  LedgerOn on;
  const std::int64_t before = obs::ledger().live_bytes(MemKind::kWeightGrads);
  MemCharge charge;
  charge.set(MemKind::kWeightGrads, 1000);
  EXPECT_EQ(obs::ledger().live_bytes(MemKind::kWeightGrads), before + 1000);
  charge.resize(1500);
  EXPECT_EQ(obs::ledger().live_bytes(MemKind::kWeightGrads), before + 1500);
  charge.resize(200);
  EXPECT_EQ(obs::ledger().live_bytes(MemKind::kWeightGrads), before + 200);
  EXPECT_EQ(charge.bytes(), 200);
  charge.release();
  EXPECT_EQ(obs::ledger().live_bytes(MemKind::kWeightGrads), before);
  EXPECT_EQ(charge.bytes(), 0);
}

TEST(Ledger, MemChargeSetWhileDisabledRemembersKindForResize) {
  obs::ledger().set_enabled(false);
  MemCharge charge;
  charge.set(MemKind::kOptimizer, 100);  // records the kind, charges nothing
  LedgerOn on;
  const std::int64_t before = obs::ledger().live_bytes(MemKind::kOptimizer);
  charge.resize(300);
  EXPECT_EQ(obs::ledger().live_bytes(MemKind::kOptimizer), before + 300);
  charge.release();
  EXPECT_EQ(obs::ledger().live_bytes(MemKind::kOptimizer), before);
}

TEST(Ledger, MemChargeMoveTransfersOwnership) {
  LedgerOn on;
  const std::int64_t before = obs::ledger().live_bytes(MemKind::kWeights);
  MemCharge a(MemKind::kWeights, 500);
  MemCharge b = std::move(a);
  EXPECT_EQ(a.bytes(), 0);
  EXPECT_EQ(b.bytes(), 500);
  EXPECT_EQ(obs::ledger().live_bytes(MemKind::kWeights), before + 500);
  b = MemCharge();
  EXPECT_EQ(obs::ledger().live_bytes(MemKind::kWeights), before);
}

TEST(Ledger, PeaksTrackHighWaterAndReset) {
  LedgerOn on;
  obs::ledger().reset_peaks();
  const std::int64_t live0 = obs::ledger().live_bytes(MemKind::kScratch);
  EXPECT_EQ(obs::ledger().peak_bytes(MemKind::kScratch), live0);
  {
    MemCharge big(MemKind::kScratch, 1 << 20);
    EXPECT_GE(obs::ledger().peak_bytes(MemKind::kScratch), live0 + (1 << 20));
  }
  // Live fell back; the peak holds until reset.
  EXPECT_EQ(obs::ledger().live_bytes(MemKind::kScratch), live0);
  EXPECT_GE(obs::ledger().peak_bytes(MemKind::kScratch), live0 + (1 << 20));
  obs::ledger().reset_peaks();
  EXPECT_EQ(obs::ledger().peak_bytes(MemKind::kScratch), live0);
}

TEST(Ledger, SnapshotTotalsAreConsistent) {
  LedgerOn on;
  obs::ledger().reset_peaks();
  MemCharge w(MemKind::kWeights, 100);
  MemCharge o(MemKind::kOptimizer, 200);
  const obs::LedgerSnapshot snap = obs::ledger().snapshot();
  std::int64_t sum = 0;
  for (const obs::MemKindSnapshot& k : snap.kinds) {
    sum += k.live_bytes;
  }
  EXPECT_EQ(sum, snap.total_live_bytes);
  EXPECT_GE(snap.total_peak_bytes, snap.total_live_bytes);
  EXPECT_LE(snap.max_rank_peak_bytes, snap.total_peak_bytes);
}

TEST(Ledger, TensorStorageIsTracked) {
  LedgerOn on;
  const std::int64_t before = obs::ledger().live_bytes(MemKind::kActivations);
  {
    MemScope scope(MemKind::kActivations);
    const Tensor t = Tensor::zeros({64, 64});
    EXPECT_GE(obs::ledger().live_bytes(MemKind::kActivations),
              before + 64 * 64 * static_cast<std::int64_t>(sizeof(float)));
  }
  EXPECT_EQ(obs::ledger().live_bytes(MemKind::kActivations), before);
}

// ---- fabric mailbox residency -----------------------------------------------

TEST(Ledger, FabricMailboxChargesCommBuffersUntilReceived) {
  LedgerOn on;
  const std::int64_t before = obs::ledger().live_bytes(MemKind::kCommBuffers);
  comm::Fabric fabric(2);
  fabric.endpoint(0).send(1, 7, std::vector<std::uint8_t>(1000));
  EXPECT_EQ(obs::ledger().live_bytes(MemKind::kCommBuffers), before + 1000);
  (void)fabric.endpoint(1).recv(0, 7);
  EXPECT_EQ(obs::ledger().live_bytes(MemKind::kCommBuffers), before);
}

TEST(Ledger, FabricTeardownDrainsUnreceivedMessages) {
  LedgerOn on;
  const std::int64_t before = obs::ledger().live_bytes(MemKind::kCommBuffers);
  {
    comm::Fabric fabric(2);
    fabric.endpoint(0).send(1, 7, std::vector<std::uint8_t>(1000));
    fabric.endpoint(1).send(0, 8, std::vector<std::uint8_t>(500));
    EXPECT_EQ(obs::ledger().live_bytes(MemKind::kCommBuffers), before + 1500);
  }
  EXPECT_EQ(obs::ledger().live_bytes(MemKind::kCommBuffers), before);
}

// ---- trainer balance --------------------------------------------------------
// Construct + train + destroy must return every category to its baseline:
// the masters/Adam/grad charges release, tensors free, mailboxes drain.

class LedgerTrainerBalance : public ::testing::TestWithParam<const char*> {};

TEST_P(LedgerTrainerBalance, ConstructTrainDestroyBalances) {
  LedgerOn on;
  TrainConfig cfg;
  cfg.model.vocab_size = 32;
  cfg.model.dim = 32;
  cfg.model.n_layers = 4;
  cfg.model.n_heads = 4;
  cfg.model.seq_len = 16;
  cfg.num_microbatches = 8;
  cfg.microbatch_size = 2;
  cfg.seq_len = 16;
  cfg.seed = 3;

  const obs::LedgerSnapshot before = obs::ledger().snapshot();
  {
    std::unique_ptr<Trainer> trainer = make_trainer(GetParam(), cfg, 4);
    SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
    (void)trainer->train_iteration(data, 0);
    (void)trainer->train_iteration(data, 1);
    // While alive, the persistent state must be on the books.
    EXPECT_GT(obs::ledger().live_bytes(MemKind::kWeights),
              before.kinds[static_cast<int>(MemKind::kWeights)].live_bytes);
    EXPECT_GT(obs::ledger().live_bytes(MemKind::kOptimizer),
              before.kinds[static_cast<int>(MemKind::kOptimizer)].live_bytes);
  }
  const obs::LedgerSnapshot after = obs::ledger().snapshot();
  for (int k = 0; k < obs::kNumMemKinds; ++k) {
    EXPECT_EQ(after.kinds[k].live_bytes, before.kinds[k].live_bytes)
        << obs::to_string(static_cast<obs::MemKind>(k));
  }
  EXPECT_EQ(after.total_live_bytes, before.total_live_bytes);
}

INSTANTIATE_TEST_SUITE_P(AllTrainers, LedgerTrainerBalance,
                         ::testing::Values("sequential", "weipipe",
                                           "weipipe-naive", "1f1b", "gpipe",
                                           "fsdp"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace weipipe
