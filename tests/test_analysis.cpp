// Static model-checker (analysis/analysis.hpp): property sweep over every
// builder, mutation tests proving injected bugs are caught with witnesses,
// and the exact static-vs-engine peak-memory cross-check.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "sched/builders.hpp"
#include "sched/validate.hpp"
#include "sched/weipipe_schedule.hpp"
#include "sim/engine.hpp"
#include "sim/topology.hpp"

namespace weipipe {
namespace {

using analysis::AnalysisReport;
using analysis::Finding;
using analysis::FindingKind;
using sched::ComputeKind;
using sched::ComputeOp;
using sched::MsgKind;
using sched::Program;
using sched::RecvOp;
using sched::SendOp;
using sched::StrategyCosts;

StrategyCosts unit_costs(std::int64_t p) {
  StrategyCosts c;
  for (std::int64_t i = 0; i < p; ++i) {
    c.fwd_seconds.push_back(1.0);
    c.bwd_seconds.push_back(2.0);
    c.bwd_acts_seconds.push_back(1.0);
    c.bwd_weights_seconds.push_back(1.0);
    c.chunk_weight_bytes.push_back(100.0);
    c.act_mem_bytes.push_back(10.0);
  }
  c.act_bytes = 50.0;
  c.act_grad_bytes = 50.0;
  return c;
}

sched::FsdpCollectiveCosts unit_coll(std::int64_t p) {
  sched::FsdpCollectiveCosts coll;
  for (std::int64_t i = 0; i < p; ++i) {
    coll.all_gather_seconds.push_back(0.5);
    coll.reduce_scatter_seconds.push_back(0.5);
    coll.all_gather_bytes.push_back(25.0);
    coll.reduce_scatter_bytes.push_back(25.0);
  }
  return coll;
}

// Every builder-emitted program for one (p, rounds/microbatches) point.
std::vector<Program> all_programs(std::int64_t p, std::int64_t rounds) {
  const StrategyCosts costs = unit_costs(p);
  const std::int64_t n = rounds * p;
  std::vector<Program> progs;
  progs.push_back(sched::build_weipipe(
      WeiPipeSchedule(p, rounds, WeiPipeMode::kNaive), costs));
  progs.push_back(sched::build_weipipe(
      WeiPipeSchedule(p, rounds, WeiPipeMode::kInterleave), costs));
  progs.push_back(sched::build_weipipe(
      WeiPipeSchedule(p, rounds, WeiPipeMode::kInterleave), costs,
      /*prefetch=*/false));
  progs.push_back(sched::build_weipipe_zero_bubble(
      p, rounds, sched::WzbVariant::kWzb1, costs));
  progs.push_back(sched::build_weipipe_zero_bubble(
      p, rounds, sched::WzbVariant::kWzb2, costs));
  progs.push_back(sched::build_gpipe(p, n, costs));
  progs.push_back(sched::build_1f1b(p, n, costs));
  progs.push_back(sched::build_zero_bubble(p, n, sched::ZbVariant::kZb1,
                                           costs));
  progs.push_back(sched::build_zero_bubble(p, n, sched::ZbVariant::kZb2,
                                           costs));
  progs.push_back(sched::build_fsdp(p, rounds, costs, unit_coll(p),
                                    /*overlap_prefetch=*/true));
  progs.push_back(sched::build_fsdp(p, rounds, costs, unit_coll(p),
                                    /*overlap_prefetch=*/false));
  return progs;
}

bool has_kind(const AnalysisReport& report, FindingKind kind) {
  return std::any_of(report.findings.begin(), report.findings.end(),
                     [kind](const Finding& f) { return f.kind == kind; });
}

std::string dump(const AnalysisReport& report) { return report.summary(); }

// ---- Property sweep: every builder, every size, zero findings ----------------

TEST(AnalysisSweep, AllBuildersAllSizesAreClean) {
  for (std::int64_t p : {2, 4, 8}) {
    for (std::int64_t rounds : {1, 2}) {
      for (const Program& prog : all_programs(p, rounds)) {
        const AnalysisReport report = analysis::analyze(prog);
        EXPECT_TRUE(report.ok()) << "p=" << p << " rounds=" << rounds << "\n"
                                 << dump(report);
        EXPECT_FALSE(report.deadlocked) << prog.name;
        EXPECT_EQ(report.ops_executed, report.ops_total) << prog.name;
      }
    }
  }
}

TEST(AnalysisSweep, WeightPassingBuildersCarryAnnotations) {
  const auto progs = all_programs(4, 2);
  // naive, interleave, no-prefetch, wzb1 circulate annotated weight flows.
  for (int i : {0, 1, 2, 3}) {
    EXPECT_TRUE(analysis::analyze(progs[static_cast<std::size_t>(i)])
                    .weight_annotated)
        << progs[static_cast<std::size_t>(i)].name;
  }
  // gpipe ships activations only; fsdp is collective-only.
  EXPECT_FALSE(analysis::analyze(progs[5]).weight_annotated);
  EXPECT_FALSE(analysis::analyze(progs[9]).weight_annotated);
}

// ---- Static peak-memory bound is exact, not an estimate ----------------------

TEST(AnalysisMemory, StaticPeaksMatchEngineBitExact) {
  for (std::int64_t p : {2, 4}) {
    for (const Program& prog : all_programs(p, 2)) {
      const AnalysisReport report = analysis::analyze(prog);
      const sim::SimResult res = sim::simulate(
          prog, sim::Topology::uniform(static_cast<int>(p),
                                       sim::Link{1e15, 0.0}, "ideal"));
      ASSERT_EQ(report.static_peak_bytes.size(), res.peak_act_bytes.size());
      for (std::size_t r = 0; r < res.peak_act_bytes.size(); ++r) {
        // Same mem_delta values in the same rank-local order: identical
        // floating-point accumulation, so equality is exact.
        EXPECT_DOUBLE_EQ(report.static_peak_bytes[r], res.peak_act_bytes[r])
            << prog.name << " rank " << r;
      }
      EXPECT_TRUE(
          sim::analysis_cross_check(prog, res).empty());
    }
  }
}

TEST(AnalysisMemory, EngineCrossCheckOptionPasses) {
  const Program prog = sched::build_weipipe(
      WeiPipeSchedule(4, 2, WeiPipeMode::kInterleave), unit_costs(4));
  EXPECT_NO_THROW(sim::simulate(
      prog, sim::Topology::uniform(4, sim::Link{1e15, 0.0}, "ideal"),
      {.record_ops = false, .cross_check_analysis = true}));
}

// ---- Injected bug 1: deadlock cycle ------------------------------------------

TEST(AnalysisDeadlock, TwoRankCycleReportedWithWitness) {
  // Each rank computes, then waits for the other's send — which sits after
  // the recv. Classic circular wait; passes every per-op structural check.
  Program prog;
  prog.name = "handmade-cycle";
  prog.rank_ops.resize(2);
  prog.rank_ops[0] = {ComputeOp{ComputeKind::kForward, 0, 0, 1.0, 0.0},
                      RecvOp{1, /*tag=*/1}, SendOp{1, 8.0, /*tag=*/0}};
  prog.rank_ops[1] = {ComputeOp{ComputeKind::kForward, 1, 0, 1.0, 0.0},
                      RecvOp{0, /*tag=*/0}, SendOp{0, 8.0, /*tag=*/1}};
  ASSERT_TRUE(sched::validate(prog).ok);  // invisible to the cheap layer

  const AnalysisReport report = analysis::analyze(prog);
  EXPECT_TRUE(report.deadlocked);
  EXPECT_LT(report.ops_executed, report.ops_total);
  ASSERT_TRUE(has_kind(report, FindingKind::kDeadlockCycle)) << dump(report);
  const auto it =
      std::find_if(report.findings.begin(), report.findings.end(),
                   [](const Finding& f) {
                     return f.kind == FindingKind::kDeadlockCycle;
                   });
  // The witness walks the wait cycle: both ranks, concrete op indices.
  EXPECT_GE(it->witness.size(), 2u);
  EXPECT_NE(it->message.find("0 -> 1"), std::string::npos) << it->message;
  bool saw_rank0 = false;
  bool saw_rank1 = false;
  for (const analysis::OpRef& ref : it->witness) {
    saw_rank0 = saw_rank0 || ref.rank == 0;
    saw_rank1 = saw_rank1 || ref.rank == 1;
  }
  EXPECT_TRUE(saw_rank0 && saw_rank1);
}

TEST(AnalysisDeadlock, ReorderedRingRecvDeadlocks) {
  // Mutation: swap rank 0's first and last recvs in the interleave ring.
  // (Swapping *adjacent* recvs is absorbed by the one-turn prefetch slack —
  // the analyzer correctly stays quiet for that.) Demanding the final turn's
  // message before turn 0 completes forces the wait chain all the way around
  // the ring and back through rank 0's own not-yet-reached sends: a provable
  // circular wait, reported with the cycle as witness.
  Program prog = sched::build_weipipe(
      WeiPipeSchedule(4, 1, WeiPipeMode::kInterleave), unit_costs(4));
  auto& ops = prog.rank_ops[0];
  std::vector<std::size_t> recv_at;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (std::holds_alternative<RecvOp>(ops[i])) {
      recv_at.push_back(i);
    }
  }
  ASSERT_GE(recv_at.size(), 4u);
  std::swap(std::get<RecvOp>(ops[recv_at.front()]),
            std::get<RecvOp>(ops[recv_at.back()]));

  const AnalysisReport report = analysis::analyze(prog);
  EXPECT_TRUE(report.deadlocked) << dump(report);
  ASSERT_TRUE(has_kind(report, FindingKind::kDeadlockCycle)) << dump(report);
  const auto it =
      std::find_if(report.findings.begin(), report.findings.end(),
                   [](const Finding& f) {
                     return f.kind == FindingKind::kDeadlockCycle;
                   });
  // The circular wait spans the whole ring.
  EXPECT_GE(it->witness.size(), 4u) << dump(report);
}

// ---- Injected bug 2: crossed tags --------------------------------------------

TEST(AnalysisTags, SwappedSendTagsReported) {
  // Mutation: rank 0's first F-weight and B-weight sends swap tags. The
  // bytes still flow and nothing deadlocks — at runtime the B shard lands
  // silently in the neighbor's F buffer. Statically: kTagMismatch.
  Program prog = sched::build_weipipe(
      WeiPipeSchedule(4, 2, WeiPipeMode::kInterleave), unit_costs(4));
  auto& ops = prog.rank_ops[0];
  SendOp* f_send = nullptr;
  SendOp* b_send = nullptr;
  for (auto& op : ops) {
    if (auto* s = std::get_if<SendOp>(&op)) {
      if (s->kind == MsgKind::kWeightF && !f_send) {
        f_send = s;
      } else if (s->kind == MsgKind::kWeightB && !b_send) {
        b_send = s;
      }
    }
    if (f_send && b_send) {
      break;
    }
  }
  ASSERT_NE(f_send, nullptr);
  ASSERT_NE(b_send, nullptr);
  std::swap(f_send->tag, b_send->tag);

  const AnalysisReport report = analysis::analyze(prog);
  ASSERT_TRUE(has_kind(report, FindingKind::kTagMismatch)) << dump(report);
  const auto it = std::find_if(report.findings.begin(), report.findings.end(),
                               [](const Finding& f) {
                                 return f.kind == FindingKind::kTagMismatch;
                               });
  EXPECT_GE(it->witness.size(), 2u);  // the recv and the matched send
  EXPECT_NE(it->message.find("tags are crossed"), std::string::npos);
}

TEST(AnalysisTags, HandmadeKindDisagreement) {
  Program prog;
  prog.name = "crossed";
  prog.rank_ops.resize(2);
  prog.rank_ops[0] = {SendOp{1, 8.0, 1, false, MsgKind::kWeightF, 0},
                      SendOp{1, 8.0, 2, false, MsgKind::kWeightB, 0}};
  prog.rank_ops[1] = {RecvOp{0, 1, MsgKind::kWeightB},
                      RecvOp{0, 2, MsgKind::kWeightF}};
  const AnalysisReport report = analysis::analyze(prog);
  std::size_t mismatches = 0;
  for (const Finding& f : report.findings) {
    mismatches += f.kind == FindingKind::kTagMismatch;
  }
  EXPECT_EQ(mismatches, 2u) << dump(report);
}

// ---- Injected bug 3: weight-version skew -------------------------------------

TEST(AnalysisWeights, OffByOneRingRotationReported) {
  // Mutation: rank 0 annotates its first F-weight send one chunk ahead —
  // exactly the bug of rotating the ring by the wrong offset.
  const std::int64_t p = 4;
  Program prog = sched::build_weipipe(
      WeiPipeSchedule(p, 2, WeiPipeMode::kInterleave), unit_costs(p));
  for (auto& op : prog.rank_ops[0]) {
    if (auto* s = std::get_if<SendOp>(&op)) {
      if (s->kind == MsgKind::kWeightF) {
        s->chunk = (s->chunk + 1) % p;
        break;
      }
    }
  }
  const AnalysisReport report = analysis::analyze(prog);
  ASSERT_TRUE(has_kind(report, FindingKind::kWeightVersion)) << dump(report);
  const auto it = std::find_if(report.findings.begin(), report.findings.end(),
                               [](const Finding& f) {
                                 return f.kind == FindingKind::kWeightVersion;
                               });
  EXPECT_FALSE(it->witness.empty());
  EXPECT_NE(it->message.find("rank"), std::string::npos);
  EXPECT_NE(it->message.find("chunk"), std::string::npos);
}

TEST(AnalysisWeights, StaleShardAtComputeReported) {
  // Rank 1 receives F chunk 1 but its forward claims chunk 2.
  Program prog;
  prog.name = "stale";
  prog.rank_ops.resize(2);
  prog.rank_ops[0] = {SendOp{1, 8.0, 7, false, MsgKind::kWeightF, 1}};
  prog.rank_ops[1] = {RecvOp{0, 7, MsgKind::kWeightF},
                      ComputeOp{ComputeKind::kForward, 0, 2, 1.0, 0.0}};
  const AnalysisReport report = analysis::analyze(prog);
  ASSERT_TRUE(has_kind(report, FindingKind::kWeightVersion)) << dump(report);
}

// ---- Injected bug 4: dropped recv --------------------------------------------

TEST(AnalysisStructure, DroppedRecvReported) {
  Program prog = sched::build_weipipe(
      WeiPipeSchedule(4, 2, WeiPipeMode::kInterleave), unit_costs(4));
  auto& ops = prog.rank_ops[2];
  const auto it = std::find_if(ops.begin(), ops.end(), [](const sched::Op& o) {
    return std::holds_alternative<RecvOp>(o);
  });
  ASSERT_NE(it, ops.end());
  ops.erase(it);

  const AnalysisReport report = analysis::analyze(prog);
  EXPECT_FALSE(report.ok());
  // The channel imbalance surfaces through the delegated structural layer.
  EXPECT_TRUE(has_kind(report, FindingKind::kValidation)) << dump(report);
}

TEST(AnalysisStructure, UnmatchedRecvGetsDedicatedFinding) {
  Program prog;
  prog.name = "starved";
  prog.rank_ops.resize(2);
  prog.rank_ops[0] = {SendOp{1, 8.0, /*tag=*/8}};
  prog.rank_ops[1] = {RecvOp{0, /*tag=*/8}, RecvOp{0, /*tag=*/9}};
  const AnalysisReport report = analysis::analyze(prog);
  ASSERT_TRUE(has_kind(report, FindingKind::kUnmatchedRecv)) << dump(report);
  const auto it = std::find_if(report.findings.begin(), report.findings.end(),
                               [](const Finding& f) {
                                 return f.kind == FindingKind::kUnmatchedRecv;
                               });
  EXPECT_NE(it->message.find("rank 1"), std::string::npos) << it->message;
}

// ---- Compute coverage --------------------------------------------------------

TEST(AnalysisCoverage, DoubleForwardReported) {
  Program prog;
  prog.name = "double-fwd";
  prog.rank_ops.resize(1);
  prog.rank_ops[0] = {ComputeOp{ComputeKind::kForward, 0, 0, 1.0, 0.0},
                      ComputeOp{ComputeKind::kForward, 0, 0, 1.0, 0.0},
                      ComputeOp{ComputeKind::kBackward, 0, 0, 2.0, 0.0}};
  const AnalysisReport report = analysis::analyze(prog);
  EXPECT_TRUE(has_kind(report, FindingKind::kComputeCoverage)) << dump(report);
}

TEST(AnalysisCoverage, MissingBackwardWeightsReported) {
  // Zero-bubble split that runs Ba but never Bw: the weight gradient for
  // (m=0, c=0) is never produced.
  Program prog;
  prog.name = "lost-w";
  prog.rank_ops.resize(1);
  prog.rank_ops[0] = {ComputeOp{ComputeKind::kForward, 0, 0, 1.0, 0.0},
                      ComputeOp{ComputeKind::kBackwardActs, 0, 0, 1.0, 0.0}};
  const AnalysisReport report = analysis::analyze(prog);
  EXPECT_TRUE(has_kind(report, FindingKind::kComputeCoverage)) << dump(report);
}

// ---- Extended structural validation (sched::validate) ------------------------

TEST(ValidateExtensions, NegativeCollectiveId) {
  Program prog;
  prog.name = "neg-id";
  prog.rank_ops.resize(1);
  prog.rank_ops[0] = {sched::CollectiveStartOp{-3, 1.0, 8.0},
                      sched::CollectiveWaitOp{-3}};
  const auto report = sched::validate(prog);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.problems.front().find("negative collective id"),
            std::string::npos);
}

TEST(ValidateExtensions, DuplicateCollectiveId) {
  Program prog;
  prog.name = "dup-id";
  prog.rank_ops.resize(1);
  prog.rank_ops[0] = {sched::CollectiveStartOp{5, 1.0, 8.0},
                      sched::CollectiveStartOp{5, 1.0, 8.0},
                      sched::CollectiveWaitOp{5}};
  const auto report = sched::validate(prog);
  EXPECT_FALSE(report.ok);
  bool found = false;
  for (const auto& p : report.problems) {
    found = found || p.find("duplicate collective id") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(ValidateExtensions, NanCollectiveBytes) {
  Program prog;
  prog.name = "nan-bytes";
  prog.rank_ops.resize(1);
  prog.rank_ops[0] = {
      sched::CollectiveStartOp{0, 1.0,
                               std::numeric_limits<double>::quiet_NaN()},
      sched::CollectiveWaitOp{0}};
  const auto report = sched::validate(prog);
  EXPECT_FALSE(report.ok);
}

TEST(ValidateExtensions, EveryRankOpensOnRecv) {
  Program prog;
  prog.name = "all-blocked";
  prog.rank_ops.resize(2);
  prog.rank_ops[0] = {RecvOp{1, 0}, SendOp{1, 8.0, 1}};
  prog.rank_ops[1] = {RecvOp{0, 1}, SendOp{0, 8.0, 0}};
  const auto report = sched::validate(prog);
  EXPECT_FALSE(report.ok);
  bool found = false;
  for (const auto& p : report.problems) {
    found = found || p.find("Recv before any possible Send") !=
                         std::string::npos;
  }
  EXPECT_TRUE(found);
}

// ---- Reporting ergonomics ----------------------------------------------------

TEST(AnalysisReporting, DescribeOpNamesPayloads) {
  Program prog;
  prog.name = "describe";
  prog.rank_ops.resize(2);
  prog.rank_ops[0] = {SendOp{1, 8.0, 4, true, MsgKind::kWeightF, 3}};
  prog.rank_ops[1] = {RecvOp{0, 4, MsgKind::kWeightF}};
  const std::string s = analysis::describe_op(prog, 0, 0);
  EXPECT_NE(s.find("Send"), std::string::npos) << s;
  EXPECT_NE(s.find("F-weight"), std::string::npos) << s;
  EXPECT_NE(s.find("chunk 3"), std::string::npos) << s;
}

TEST(AnalysisReporting, SummaryIsHumanReadable) {
  const Program prog = sched::build_weipipe(
      WeiPipeSchedule(4, 1, WeiPipeMode::kInterleave), unit_costs(4));
  const AnalysisReport report = analysis::analyze(prog);
  const std::string s = report.summary();
  EXPECT_NE(s.find(prog.name), std::string::npos);
  EXPECT_NE(s.find("0 findings"), std::string::npos) << s;
}

TEST(AnalysisReporting, FindingCapCountsDropped) {
  // A pathological program with hundreds of doomed recvs must not produce an
  // unbounded report.
  Program prog;
  prog.name = "flood";
  prog.rank_ops.resize(2);
  prog.rank_ops[0] = {SendOp{1, 8.0, 0}};
  prog.rank_ops[1] = {RecvOp{0, 0}};
  for (int i = 0; i < 300; ++i) {
    prog.rank_ops[1].push_back(RecvOp{0, /*tag=*/100 + i});
  }
  const AnalysisReport report = analysis::analyze(prog);
  EXPECT_FALSE(report.ok());
  EXPECT_LE(report.findings.size(), 64u);
  EXPECT_GT(report.findings_dropped, 0u);
}

}  // namespace
}  // namespace weipipe
