// Gradient checks for every transformer sub-layer, plus the naive-vs-stream
// attention identity (the Flash-Attention substitution must be exact math).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "gradcheck.hpp"
#include "nn/layer_math.hpp"
#include "tensor/tensor.hpp"

namespace weipipe {
namespace {

using testing::gradient_max_rel_error;
using testing::numeric_gradient;

// ---- RMSNorm -----------------------------------------------------------------

TEST(RmsNorm, ForwardNormalizes) {
  const std::int64_t rows = 3;
  const std::int64_t dim = 8;
  Rng rng(1);
  Tensor x = Tensor::randn({rows, dim}, rng, 0.0f, 2.0f);
  Tensor gain = Tensor::full({dim}, 1.0f);
  Tensor y({rows, dim});
  Tensor inv({rows});
  rmsnorm_forward(x.data(), gain.data(), y.data(), inv.data(), rows, dim,
                  1e-6f);
  for (std::int64_t r = 0; r < rows; ++r) {
    double ss = 0.0;
    for (std::int64_t j = 0; j < dim; ++j) {
      ss += static_cast<double>(y(r, j)) * y(r, j);
    }
    EXPECT_NEAR(ss / dim, 1.0, 1e-4);  // unit RMS after normalization
  }
}

TEST(RmsNorm, GradCheck) {
  const std::int64_t rows = 2;
  const std::int64_t dim = 6;
  Rng rng(2);
  Tensor x = Tensor::randn({rows, dim}, rng);
  Tensor gain = Tensor::randn({dim}, rng, 1.0f, 0.2f);
  Tensor dy = Tensor::randn({rows, dim}, rng);

  auto loss = [&](const float* xp, const float* gp) {
    Tensor y({rows, dim});
    Tensor inv({rows});
    rmsnorm_forward(xp, gp, y.data(), inv.data(), rows, dim, 1e-5f);
    double acc = 0.0;
    for (std::int64_t i = 0; i < rows * dim; ++i) {
      acc += static_cast<double>(y.data()[i]) * dy.data()[i];
    }
    return acc;
  };

  Tensor y({rows, dim});
  Tensor inv({rows});
  rmsnorm_forward(x.data(), gain.data(), y.data(), inv.data(), rows, dim,
                  1e-5f);
  Tensor dx({rows, dim});
  Tensor dgain({dim});
  dgain.zero();
  rmsnorm_backward(x.data(), gain.data(), inv.data(), dy.data(), dx.data(),
                   dgain.data(), rows, dim);

  const auto num_dx = numeric_gradient(
      [&](std::span<const float> v) { return loss(v.data(), gain.data()); },
      x.span());
  EXPECT_LT(gradient_max_rel_error(dx.span(), num_dx), 2e-3);

  const auto num_dg = numeric_gradient(
      [&](std::span<const float> v) { return loss(x.data(), v.data()); },
      gain.span());
  EXPECT_LT(gradient_max_rel_error(dgain.span(), num_dg), 2e-3);
}

// ---- RoPE ---------------------------------------------------------------------

TEST(Rope, PreservesNorm) {
  const std::int64_t rows = 8;
  const std::int64_t seq = 4;
  const std::int64_t nh = 2;
  const std::int64_t dh = 6;
  Rng rng(3);
  Tensor x = Tensor::randn({rows, nh * dh}, rng);
  const float before = x.norm();
  rope_apply(x.data(), rows, seq, nh, dh, 10000.0f, false);
  EXPECT_NEAR(x.norm(), before, 1e-4f);  // rotations are orthonormal
}

TEST(Rope, InverseUndoesForward) {
  const std::int64_t rows = 6;
  Rng rng(4);
  Tensor x = Tensor::randn({rows, 8}, rng);
  const Tensor orig = x;
  rope_apply(x.data(), rows, 3, 2, 4, 10000.0f, false);
  EXPECT_GT(max_abs_diff(x, orig), 1e-3f);  // actually rotated
  rope_apply(x.data(), rows, 3, 2, 4, 10000.0f, true);
  EXPECT_TRUE(allclose(x, orig, 1e-5f, 1e-6f));
}

TEST(Rope, PositionZeroIsIdentity) {
  Rng rng(5);
  Tensor x = Tensor::randn({1, 8}, rng);  // single row => position 0
  const Tensor orig = x;
  rope_apply(x.data(), 1, 16, 2, 4, 10000.0f, false);
  EXPECT_EQ(max_abs_diff(x, orig), 0.0f);
}

// ---- Attention ------------------------------------------------------------------

struct AttnDims {
  std::int64_t G, S, nh, dh;
};

class AttentionParity : public ::testing::TestWithParam<AttnDims> {};

TEST_P(AttentionParity, StreamMatchesNaiveForward) {
  const auto [G, S, nh, dh] = GetParam();
  const std::int64_t H = nh * dh;
  Rng rng(6);
  const Tensor q = Tensor::randn({G * S, H}, rng);
  const Tensor k = Tensor::randn({G * S, H}, rng);
  const Tensor v = Tensor::randn({G * S, H}, rng);
  Tensor out_naive({G * S, H});
  Tensor probs({G, nh, S, S});
  attention_forward_naive(q.data(), k.data(), v.data(), out_naive.data(),
                          probs.data(), G, S, nh, dh);
  Tensor out_stream({G * S, H});
  Tensor lse({G, nh, S});
  attention_forward_stream(q.data(), k.data(), v.data(), out_stream.data(),
                           lse.data(), G, S, nh, dh);
  EXPECT_TRUE(allclose(out_stream, out_naive, 1e-4f, 1e-5f));
}

TEST_P(AttentionParity, StreamMatchesNaiveBackward) {
  const auto [G, S, nh, dh] = GetParam();
  const std::int64_t H = nh * dh;
  Rng rng(7);
  const Tensor q = Tensor::randn({G * S, H}, rng);
  const Tensor k = Tensor::randn({G * S, H}, rng);
  const Tensor v = Tensor::randn({G * S, H}, rng);
  const Tensor dout = Tensor::randn({G * S, H}, rng);

  Tensor out({G * S, H});
  Tensor probs({G, nh, S, S});
  attention_forward_naive(q.data(), k.data(), v.data(), out.data(),
                          probs.data(), G, S, nh, dh);
  Tensor dq1({G * S, H}), dk1({G * S, H}), dv1({G * S, H});
  attention_backward_naive(q.data(), k.data(), v.data(), probs.data(),
                           dout.data(), dq1.data(), dk1.data(), dv1.data(), G,
                           S, nh, dh);

  Tensor out2({G * S, H});
  Tensor lse({G, nh, S});
  attention_forward_stream(q.data(), k.data(), v.data(), out2.data(),
                           lse.data(), G, S, nh, dh);
  Tensor dq2({G * S, H}), dk2({G * S, H}), dv2({G * S, H});
  attention_backward_stream(q.data(), k.data(), v.data(), out2.data(),
                            lse.data(), dout.data(), dq2.data(), dk2.data(),
                            dv2.data(), G, S, nh, dh);
  EXPECT_TRUE(allclose(dq2, dq1, 1e-3f, 1e-5f));
  EXPECT_TRUE(allclose(dk2, dk1, 1e-3f, 1e-5f));
  EXPECT_TRUE(allclose(dv2, dv1, 1e-3f, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(
    Dims, AttentionParity,
    ::testing::Values(AttnDims{1, 1, 1, 2}, AttnDims{1, 4, 1, 4},
                      AttnDims{2, 8, 2, 4}, AttnDims{1, 16, 4, 8},
                      AttnDims{3, 5, 2, 6}));

TEST(Attention, CausalityRespected) {
  // Changing a *future* token's k/v must not change earlier outputs.
  const std::int64_t G = 1, S = 6, nh = 2, dh = 4, H = nh * dh;
  Rng rng(8);
  const Tensor q = Tensor::randn({S, H}, rng);
  Tensor k = Tensor::randn({S, H}, rng);
  Tensor v = Tensor::randn({S, H}, rng);
  Tensor out1({S, H});
  Tensor lse({G, nh, S});
  attention_forward_stream(q.data(), k.data(), v.data(), out1.data(),
                           lse.data(), G, S, nh, dh);
  // Perturb the last position's k and v.
  for (std::int64_t j = 0; j < H; ++j) {
    k(S - 1, j) += 10.0f;
    v(S - 1, j) -= 5.0f;
  }
  Tensor out2({S, H});
  attention_forward_stream(q.data(), k.data(), v.data(), out2.data(),
                           lse.data(), G, S, nh, dh);
  for (std::int64_t i = 0; i < S - 1; ++i) {
    for (std::int64_t j = 0; j < H; ++j) {
      EXPECT_EQ(out1(i, j), out2(i, j)) << "row " << i;
    }
  }
}

TEST(Attention, GradCheckSmall) {
  const std::int64_t G = 1, S = 3, nh = 1, dh = 4, H = nh * dh;
  Rng rng(9);
  Tensor q = Tensor::randn({S, H}, rng);
  Tensor k = Tensor::randn({S, H}, rng);
  Tensor v = Tensor::randn({S, H}, rng);
  const Tensor dout = Tensor::randn({S, H}, rng);

  auto loss = [&](const float* qp, const float* kp, const float* vp) {
    Tensor out({S, H});
    Tensor lse({G, nh, S});
    attention_forward_stream(qp, kp, vp, out.data(), lse.data(), G, S, nh,
                             dh);
    double acc = 0.0;
    for (std::int64_t i = 0; i < S * H; ++i) {
      acc += static_cast<double>(out.data()[i]) * dout.data()[i];
    }
    return acc;
  };

  Tensor out({S, H});
  Tensor lse({G, nh, S});
  attention_forward_stream(q.data(), k.data(), v.data(), out.data(),
                           lse.data(), G, S, nh, dh);
  Tensor dq({S, H}), dk({S, H}), dv({S, H});
  attention_backward_stream(q.data(), k.data(), v.data(), out.data(),
                            lse.data(), dout.data(), dq.data(), dk.data(),
                            dv.data(), G, S, nh, dh);

  const auto num_dq = numeric_gradient(
      [&](std::span<const float> x) { return loss(x.data(), k.data(), v.data()); },
      q.span());
  EXPECT_LT(gradient_max_rel_error(dq.span(), num_dq), 3e-3);
  const auto num_dk = numeric_gradient(
      [&](std::span<const float> x) { return loss(q.data(), x.data(), v.data()); },
      k.span());
  EXPECT_LT(gradient_max_rel_error(dk.span(), num_dk), 3e-3);
  const auto num_dv = numeric_gradient(
      [&](std::span<const float> x) { return loss(q.data(), k.data(), x.data()); },
      v.span());
  EXPECT_LT(gradient_max_rel_error(dv.span(), num_dv), 3e-3);
}

// ---- Grouped-query attention -----------------------------------------------------

struct GqaDims {
  std::int64_t G, S, nh, nkv, dh;
};

class GqaParity : public ::testing::TestWithParam<GqaDims> {};

TEST_P(GqaParity, StreamMatchesNaiveForwardAndBackward) {
  const auto [G, S, nh, nkv, dh] = GetParam();
  const std::int64_t H = nh * dh;
  const std::int64_t Hkv = nkv * dh;
  Rng rng(21);
  const Tensor q = Tensor::randn({G * S, H}, rng);
  const Tensor k = Tensor::randn({G * S, Hkv}, rng);
  const Tensor v = Tensor::randn({G * S, Hkv}, rng);
  const Tensor dout = Tensor::randn({G * S, H}, rng);

  Tensor out1({G * S, H});
  Tensor probs({G, nh, S, S});
  attention_forward_naive(q.data(), k.data(), v.data(), out1.data(),
                          probs.data(), G, S, nh, nkv, dh);
  Tensor out2({G * S, H});
  Tensor lse({G, nh, S});
  attention_forward_stream(q.data(), k.data(), v.data(), out2.data(),
                           lse.data(), G, S, nh, nkv, dh);
  EXPECT_TRUE(allclose(out2, out1, 1e-4f, 1e-5f));

  Tensor dq1({G * S, H}), dk1({G * S, Hkv}), dv1({G * S, Hkv});
  attention_backward_naive(q.data(), k.data(), v.data(), probs.data(),
                           dout.data(), dq1.data(), dk1.data(), dv1.data(), G,
                           S, nh, nkv, dh);
  Tensor dq2({G * S, H}), dk2({G * S, Hkv}), dv2({G * S, Hkv});
  attention_backward_stream(q.data(), k.data(), v.data(), out2.data(),
                            lse.data(), dout.data(), dq2.data(), dk2.data(),
                            dv2.data(), G, S, nh, nkv, dh);
  EXPECT_TRUE(allclose(dq2, dq1, 1e-3f, 1e-5f));
  EXPECT_TRUE(allclose(dk2, dk1, 1e-3f, 1e-5f));
  EXPECT_TRUE(allclose(dv2, dv1, 1e-3f, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(
    Dims, GqaParity,
    ::testing::Values(GqaDims{1, 4, 2, 1, 4}, GqaDims{2, 6, 4, 2, 4},
                      GqaDims{1, 8, 8, 2, 2}, GqaDims{2, 5, 6, 3, 4},
                      GqaDims{1, 7, 4, 4, 4}));  // nkv==nh degenerates to MHA

TEST(Gqa, GradCheckSmall) {
  const std::int64_t G = 1, S = 3, nh = 2, nkv = 1, dh = 4;
  const std::int64_t H = nh * dh, Hkv = nkv * dh;
  Rng rng(22);
  Tensor q = Tensor::randn({S, H}, rng);
  Tensor k = Tensor::randn({S, Hkv}, rng);
  Tensor v = Tensor::randn({S, Hkv}, rng);
  const Tensor dout = Tensor::randn({S, H}, rng);

  auto loss = [&](const float* qp, const float* kp, const float* vp) {
    Tensor out({S, H});
    Tensor lse({G, nh, S});
    attention_forward_stream(qp, kp, vp, out.data(), lse.data(), G, S, nh,
                             nkv, dh);
    double acc = 0.0;
    for (std::int64_t i = 0; i < S * H; ++i) {
      acc += static_cast<double>(out.data()[i]) * dout.data()[i];
    }
    return acc;
  };

  Tensor out({S, H});
  Tensor lse({G, nh, S});
  attention_forward_stream(q.data(), k.data(), v.data(), out.data(),
                           lse.data(), G, S, nh, nkv, dh);
  Tensor dq({S, H}), dk({S, Hkv}), dv({S, Hkv});
  attention_backward_stream(q.data(), k.data(), v.data(), out.data(),
                            lse.data(), dout.data(), dq.data(), dk.data(),
                            dv.data(), G, S, nh, nkv, dh);
  EXPECT_LT(gradient_max_rel_error(
                dk.span(), numeric_gradient(
                               [&](std::span<const float> x) {
                                 return loss(q.data(), x.data(), v.data());
                               },
                               k.span())),
            3e-3);
  EXPECT_LT(gradient_max_rel_error(
                dv.span(), numeric_gradient(
                               [&](std::span<const float> x) {
                                 return loss(q.data(), k.data(), x.data());
                               },
                               v.span())),
            3e-3);
  EXPECT_LT(gradient_max_rel_error(
                dq.span(), numeric_gradient(
                               [&](std::span<const float> x) {
                                 return loss(x.data(), k.data(), v.data());
                               },
                               q.span())),
            3e-3);
}

// ---- SwiGLU --------------------------------------------------------------------

TEST(Swiglu, GradCheck) {
  const std::int64_t rows = 3, dim = 4, ffn = 6;
  Rng rng(10);
  Tensor x = Tensor::randn({rows, dim}, rng);
  Tensor w1 = Tensor::randn({ffn, dim}, rng, 0.0f, 0.5f);
  Tensor w3 = Tensor::randn({ffn, dim}, rng, 0.0f, 0.5f);
  Tensor w2 = Tensor::randn({dim, ffn}, rng, 0.0f, 0.5f);
  const Tensor dy = Tensor::randn({rows, dim}, rng);

  auto loss = [&](const float* xp, const float* w1p, const float* w3p,
                  const float* w2p) {
    Tensor a({rows, ffn}), b({rows, ffn}), y({rows, dim});
    swiglu_forward(xp, w1p, w3p, w2p, a.data(), b.data(), y.data(), rows, dim,
                   ffn);
    double acc = 0.0;
    for (std::int64_t i = 0; i < rows * dim; ++i) {
      acc += static_cast<double>(y.data()[i]) * dy.data()[i];
    }
    return acc;
  };

  Tensor a({rows, ffn}), b({rows, ffn}), y({rows, dim});
  swiglu_forward(x.data(), w1.data(), w3.data(), w2.data(), a.data(),
                 b.data(), y.data(), rows, dim, ffn);
  Tensor dx({rows, dim});
  Tensor dw1({ffn, dim}), dw3({ffn, dim}), dw2({dim, ffn});
  dw1.zero();
  dw3.zero();
  dw2.zero();
  swiglu_backward(x.data(), w1.data(), w3.data(), w2.data(), a.data(),
                  b.data(), dy.data(), dx.data(), dw1.data(), dw3.data(),
                  dw2.data(), rows, dim, ffn);

  EXPECT_LT(gradient_max_rel_error(
                dx.span(),
                numeric_gradient(
                    [&](std::span<const float> p) {
                      return loss(p.data(), w1.data(), w3.data(), w2.data());
                    },
                    x.span())),
            2e-3);
  EXPECT_LT(gradient_max_rel_error(
                dw1.span(),
                numeric_gradient(
                    [&](std::span<const float> p) {
                      return loss(x.data(), p.data(), w3.data(), w2.data());
                    },
                    w1.span())),
            2e-3);
  EXPECT_LT(gradient_max_rel_error(
                dw3.span(),
                numeric_gradient(
                    [&](std::span<const float> p) {
                      return loss(x.data(), w1.data(), p.data(), w2.data());
                    },
                    w3.span())),
            2e-3);
  EXPECT_LT(gradient_max_rel_error(
                dw2.span(),
                numeric_gradient(
                    [&](std::span<const float> p) {
                      return loss(x.data(), w1.data(), w3.data(), p.data());
                    },
                    w2.span())),
            2e-3);
}

// ---- Cross entropy ---------------------------------------------------------------

TEST(CrossEntropy, UniformLogitsGiveLogV) {
  const std::int64_t rows = 4, vocab = 8;
  Tensor logits = Tensor::zeros({rows, vocab});
  std::vector<std::int32_t> targets = {0, 3, 5, 7};
  Tensor dlogits({rows, vocab});
  const float loss = cross_entropy(logits.data(), targets.data(),
                                   dlogits.data(), rows, vocab);
  EXPECT_NEAR(loss, std::log(8.0f), 1e-5f);
}

TEST(CrossEntropy, GradCheck) {
  const std::int64_t rows = 3, vocab = 5;
  Rng rng(11);
  Tensor logits = Tensor::randn({rows, vocab}, rng);
  std::vector<std::int32_t> targets = {1, 4, 0};

  Tensor dlogits({rows, vocab});
  const float base = cross_entropy(logits.data(), targets.data(),
                                   dlogits.data(), rows, vocab);
  (void)base;
  Tensor scratch({rows, vocab});
  const auto num = numeric_gradient(
      [&](std::span<const float> p) {
        return cross_entropy(p.data(), targets.data(), scratch.data(), rows,
                             vocab);
      },
      logits.span());
  EXPECT_LT(gradient_max_rel_error(dlogits.span(), num), 2e-3);
}

TEST(CrossEntropy, GradientRowsSumToZero) {
  const std::int64_t rows = 2, vocab = 6;
  Rng rng(12);
  Tensor logits = Tensor::randn({rows, vocab}, rng, 0.0f, 2.0f);
  std::vector<std::int32_t> targets = {2, 5};
  Tensor dlogits({rows, vocab});
  cross_entropy(logits.data(), targets.data(), dlogits.data(), rows, vocab);
  for (std::int64_t r = 0; r < rows; ++r) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < vocab; ++c) {
      sum += dlogits(r, c);
    }
    EXPECT_NEAR(sum, 0.0, 1e-6);  // softmax minus one-hot sums to zero
  }
}

}  // namespace
}  // namespace weipipe
