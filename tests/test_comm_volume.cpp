// The paper's central communication claim, measured on the REAL fabric:
// WeiPipe's wire volume is independent of microbatch size G and sequence
// length S, while activation-passing pipelines scale with G*S. Also checks
// the per-turn 3-chunk accounting (paper's 36 H^2) and the fp16 halving.
#include <gtest/gtest.h>

#include "baselines/fsdp_trainer.hpp"
#include "baselines/pipeline_trainer.hpp"
#include "core/accounting.hpp"
#include "core/weipipe_trainer.hpp"

namespace weipipe {
namespace {

TrainConfig base_config(std::int64_t g, std::int64_t s) {
  TrainConfig cfg;
  cfg.model.vocab_size = 32;
  cfg.model.dim = 32;
  cfg.model.n_layers = 4;
  cfg.model.n_heads = 4;
  cfg.model.seq_len = s;
  cfg.num_microbatches = 8;
  cfg.microbatch_size = g;
  cfg.seq_len = s;
  cfg.seed = 3;
  return cfg;
}

std::uint64_t iteration_bytes(Trainer& t, const TrainConfig& cfg) {
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  return t.train_iteration(data, 0).wire_bytes;
}

TEST(CommVolume, WeiPipeIndependentOfMicrobatchSizeAndSeq) {
  std::uint64_t bytes_small;
  std::uint64_t bytes_big_g;
  std::uint64_t bytes_big_s;
  {
    const TrainConfig cfg = base_config(1, 8);
    WeiPipeTrainer t(cfg, 4);
    bytes_small = iteration_bytes(t, cfg);
  }
  {
    const TrainConfig cfg = base_config(8, 8);  // 8x the tokens via G
    WeiPipeTrainer t(cfg, 4);
    bytes_big_g = iteration_bytes(t, cfg);
  }
  {
    const TrainConfig cfg = base_config(1, 64);  // 8x the tokens via S
    WeiPipeTrainer t(cfg, 4);
    bytes_big_s = iteration_bytes(t, cfg);
  }
  EXPECT_EQ(bytes_small, bytes_big_g);
  EXPECT_EQ(bytes_small, bytes_big_s);
}

TEST(CommVolume, ActivationPassingScalesWithTokens) {
  std::uint64_t bytes_small;
  std::uint64_t bytes_big;
  {
    const TrainConfig cfg = base_config(1, 8);
    PipelineTrainer t(cfg, 4);
    bytes_small = iteration_bytes(t, cfg);
  }
  {
    const TrainConfig cfg = base_config(4, 16);  // 8x the tokens
    PipelineTrainer t(cfg, 4);
    bytes_big = iteration_bytes(t, cfg);
  }
  EXPECT_EQ(bytes_big, 8 * bytes_small);  // pure G*S*H scaling
}

TEST(CommVolume, FsdpIndependentOfTokensButCollectiveHeavy) {
  std::uint64_t bytes_small;
  std::uint64_t bytes_big;
  {
    const TrainConfig cfg = base_config(1, 8);
    FsdpTrainer t(cfg, 4);
    bytes_small = iteration_bytes(t, cfg);
  }
  {
    const TrainConfig cfg = base_config(8, 8);
    FsdpTrainer t(cfg, 4);
    bytes_big = iteration_bytes(t, cfg);
  }
  EXPECT_EQ(bytes_small, bytes_big);  // weights only, like WeiPipe
}

TEST(CommVolume, HalfPrecisionHalvesWeightTraffic) {
  const TrainConfig cfg32 = base_config(2, 16);
  TrainConfig cfg16 = cfg32;
  cfg16.precision.weights = WirePrecision::Fp16;
  cfg16.precision.weight_grads = WirePrecision::Fp16;
  WeiPipeTrainer t32(cfg32, 4);
  WeiPipeTrainer t16(cfg16, 4);
  const std::uint64_t b32 = iteration_bytes(t32, cfg32);
  const std::uint64_t b16 = iteration_bytes(t16, cfg16);
  EXPECT_EQ(b16 * 2, b32);
}

TEST(CommVolume, WeiPipeMovesThreeChunksPerWorkerPerTurn) {
  // Paper §4.2.2: two weight chunks + one gradient chunk per turn (36 H^2
  // for one-layer chunks). Verify against the fabric byte counters.
  const TrainConfig cfg = base_config(2, 16);
  const std::int64_t p = 4;
  WeiPipeTrainer t(cfg, p);
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  const IterationResult res = t.train_iteration(data, 0);

  const std::int64_t turns = t.schedule().total_turns();
  // Sum of all chunk sizes (fp32 wire = 4 bytes) passed 3x per turn by each
  // worker, plus the redistribution (2 messages per chunk) at the start.
  Model model(cfg.model);
  const auto chunks = model.make_chunks(p);
  std::uint64_t per_turn = 0;
  std::uint64_t redist = 0;
  for (const ChunkSpec& spec : chunks) {
    per_turn += 3ull * 4ull * static_cast<std::uint64_t>(spec.param_count);
    redist += 2ull * 4ull * static_cast<std::uint64_t>(spec.param_count);
  }
  // Flow traffic: per turn, each chunk position appears exactly once per
  // flow across the ring, so total per turn = 3 * sum(chunk bytes).
  const std::uint64_t expected =
      static_cast<std::uint64_t>(turns) * per_turn + redist;
  // Redistribution skips owner==holder cases, so expected is an upper bound
  // that is tight to within the redistribution volume.
  EXPECT_LE(res.wire_bytes, expected);
  EXPECT_GE(res.wire_bytes,
            static_cast<std::uint64_t>(turns) * per_turn);
}

TEST(CommVolume, InterleaveBeatsNaivePerToken) {
  // Naive circulates flows for ~2x the turns (2RP vs (R+2)P) to process the
  // same tokens; at R=8 rounds the ratio is 67/39 ~ 1.7.
  TrainConfig cfg = base_config(2, 16);
  cfg.num_microbatches = 32;
  WeiPipeTrainer inter(cfg, 4, {.mode = WeiPipeMode::kInterleave});
  WeiPipeTrainer naive(cfg, 4, {.mode = WeiPipeMode::kNaive});
  const std::uint64_t bi = iteration_bytes(inter, cfg);
  const std::uint64_t bn = iteration_bytes(naive, cfg);
  EXPECT_GT(bn, bi * 3 / 2);
}

// ---- closed forms (acct::predicted_kind_volumes) ----------------------------
// The per-MsgKind wire ledger must equal the paper-style closed forms
// byte-for-byte and message-for-message, and the closed forms must cover
// every byte the fabric moved (no unclassified traffic).

void expect_matches_closed_form(Trainer& trainer, comm::Fabric& fabric,
                                const std::string& strategy,
                                const TrainConfig& cfg, std::int64_t workers) {
  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  const IterationResult res = trainer.train_iteration(data, 0);

  ASSERT_TRUE(acct::has_predicted_kind_volumes(strategy, cfg));
  const acct::KindVolumes measured = acct::measured_kind_volumes(fabric);
  const acct::KindVolumes predicted =
      acct::predicted_kind_volumes(strategy, cfg, workers);

  std::uint64_t predicted_total = 0;
  for (const auto& [kind, kv] : predicted) {
    const auto it = measured.find(kind);
    ASSERT_NE(it, measured.end()) << "no traffic of kind "
                                  << sched::to_string(kind);
    EXPECT_EQ(it->second.bytes, kv.bytes) << sched::to_string(kind);
    EXPECT_EQ(it->second.messages, kv.messages) << sched::to_string(kind);
    predicted_total += kv.bytes;
  }
  EXPECT_EQ(measured.size(), predicted.size());
  EXPECT_EQ(res.wire_bytes, predicted_total);  // every byte classified
}

TEST(CommVolume, ClosedFormMatchesWeiPipeInterleave) {
  const TrainConfig cfg = base_config(2, 16);
  WeiPipeTrainer t(cfg, 4);
  expect_matches_closed_form(t, *t.fabric(), "weipipe", cfg, 4);
}

TEST(CommVolume, ClosedFormMatchesWeiPipeNaive) {
  const TrainConfig cfg = base_config(2, 16);
  WeiPipeTrainer t(cfg, 4, {.mode = WeiPipeMode::kNaive});
  expect_matches_closed_form(t, *t.fabric(), "weipipe-naive", cfg, 4);
}

TEST(CommVolume, ClosedFormMatchesWeiPipeFp16) {
  TrainConfig cfg = base_config(2, 16);
  cfg.precision.weights = WirePrecision::Fp16;
  cfg.precision.weight_grads = WirePrecision::Bf16;
  WeiPipeTrainer t(cfg, 4);
  expect_matches_closed_form(t, *t.fabric(), "weipipe", cfg, 4);
}

TEST(CommVolume, ClosedFormMatches1F1B) {
  const TrainConfig cfg = base_config(2, 16);
  PipelineTrainer t(cfg, 4);
  expect_matches_closed_form(t, *t.fabric(), "1f1b", cfg, 4);
}

TEST(CommVolume, ClosedFormMatchesGPipe) {
  const TrainConfig cfg = base_config(2, 16);
  PipelineTrainer t(cfg, 4, {.mode = PipelineMode::kGPipe});
  expect_matches_closed_form(t, *t.fabric(), "gpipe", cfg, 4);
}

TEST(CommVolume, ClosedFormMatchesFsdp) {
  const TrainConfig cfg = base_config(2, 16);
  FsdpTrainer t(cfg, 4);
  expect_matches_closed_form(t, *t.fabric(), "fsdp", cfg, 4);
}

TEST(CommVolume, ClosedFormUnavailableOutsideEnvelope) {
  TrainConfig cfg = base_config(2, 16);
  EXPECT_TRUE(acct::has_predicted_kind_volumes("weipipe", cfg));
  cfg.clip.max_norm = 1.0f;  // clipping adds scalar all-reduce traffic
  EXPECT_FALSE(acct::has_predicted_kind_volumes("weipipe", cfg));
  EXPECT_FALSE(
      acct::has_predicted_kind_volumes("not-a-strategy", base_config(2, 16)));
}

TEST(CommVolume, ActivationGradPrecisionAppliesToPipeline) {
  // bf16 activation gradients (paper mode) halve the backward act traffic.
  TrainConfig cfg = base_config(2, 16);
  PipelineTrainer t32(cfg, 4);
  cfg.precision.activations = WirePrecision::Fp16;
  cfg.precision.activation_grads = WirePrecision::Bf16;
  PipelineTrainer t16(cfg, 4);
  const TrainConfig cfg32 = base_config(2, 16);
  EXPECT_EQ(iteration_bytes(t16, cfg) * 2, iteration_bytes(t32, cfg32));
}

}  // namespace
}  // namespace weipipe
