// Tensor container + dense kernels: shapes, errors, and numerical identity
// of the three GEMM orientations against a naive reference.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace weipipe {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.ndim(), 3);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.at({1, 2, 3}), 0.0f);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at({2, 0}), Error);
  EXPECT_THROW(t.at({0, 0, 0}), Error);
}

TEST(Tensor, FromDataAndReshape) {
  Tensor t = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t(1, 2), 6.0f);
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), Error);
  EXPECT_THROW(Tensor::from_data({2, 2}, {1.0f}), Error);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_data({2, 2}, {10, 20, 30, 40});
  Tensor c = add(a, b);
  EXPECT_EQ(c(1, 1), 44.0f);
  c = sub(b, a);
  EXPECT_EQ(c(0, 0), 9.0f);
  c = mul(a, a);
  EXPECT_EQ(c(1, 0), 9.0f);
  c = scale(a, -2.0f);
  EXPECT_EQ(c(0, 1), -4.0f);
  a.axpy_(0.5f, b);
  EXPECT_EQ(a(0, 0), 6.0f);
}

TEST(Tensor, Reductions) {
  Tensor t = Tensor::from_data({4}, {1, -5, 3, 1});
  EXPECT_FLOAT_EQ(t.sum(), 0.0f);
  EXPECT_FLOAT_EQ(t.mean(), 0.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 5.0f);
  EXPECT_FLOAT_EQ(t.norm(), 6.0f);
}

TEST(Tensor, RandnDeterministic) {
  Rng a(42);
  Rng b(42);
  Tensor x = Tensor::randn({100}, a);
  Tensor y = Tensor::randn({100}, b);
  EXPECT_EQ(max_abs_diff(x, y), 0.0f);
  Rng c(43);
  Tensor z = Tensor::randn({100}, c);
  EXPECT_GT(max_abs_diff(x, z), 0.0f);
}

TEST(Tensor, Allclose) {
  Tensor a = Tensor::full({3}, 1.0f);
  Tensor b = Tensor::full({3}, 1.0f + 1e-7f);
  EXPECT_TRUE(allclose(a, b));
  Tensor c = Tensor::full({3}, 1.1f);
  EXPECT_FALSE(allclose(a, c));
  EXPECT_FALSE(allclose(a, Tensor::full({4}, 1.0f)));
}

// Naive reference matmul for validation.
Tensor ref_matmul(const Tensor& a, const Tensor& b) {
  Tensor c({a.dim(0), b.dim(1)});
  for (std::int64_t i = 0; i < a.dim(0); ++i) {
    for (std::int64_t j = 0; j < b.dim(1); ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < a.dim(1); ++k) {
        acc += static_cast<double>(a(i, k)) * b(k, j);
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor transpose(const Tensor& a) {
  Tensor t({a.dim(1), a.dim(0)});
  for (std::int64_t i = 0; i < a.dim(0); ++i) {
    for (std::int64_t j = 0; j < a.dim(1); ++j) {
      t(j, i) = a(i, j);
    }
  }
  return t;
}

class MatmulShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulShapes, AllOrientationsMatchReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 10007 + k * 101 + n));
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  const Tensor ref = ref_matmul(a, b);
  EXPECT_TRUE(allclose(matmul(a, b), ref, 1e-4f, 1e-5f));
  // A * B == A * (B^T)^T via matmul_bt.
  EXPECT_TRUE(allclose(matmul_bt(a, transpose(b)), ref, 1e-4f, 1e-5f));
  // A * B == (A^T)^T * B via matmul_at.
  EXPECT_TRUE(allclose(matmul_at(transpose(a), b), ref, 1e-4f, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                      std::make_tuple(33, 17, 9), std::make_tuple(64, 32, 48),
                      std::make_tuple(1, 64, 1), std::make_tuple(128, 8, 128)));

TEST(Matmul, ShapeMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({4, 5});
  EXPECT_THROW(matmul(a, b), Error);
  EXPECT_THROW(matmul_bt(a, b), Error);  // needs a.dim(1)==b.dim(1)
  EXPECT_THROW(matmul_at(a, b), Error);  // needs a.dim(0)==b.dim(0)
}

TEST(Matmul, AccumulateMode) {
  Rng rng(5);
  const Tensor a = Tensor::randn({4, 6}, rng);
  const Tensor b = Tensor::randn({6, 5}, rng);
  Tensor c = Tensor::full({4, 5}, 1.0f);
  kernels::matmul(a.data(), b.data(), c.data(), 4, 6, 5, /*accumulate=*/true);
  Tensor expected = ref_matmul(a, b);
  expected.add_(Tensor::full({4, 5}, 1.0f));
  EXPECT_TRUE(allclose(c, expected, 1e-4f, 1e-5f));
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(11);
  Tensor x = Tensor::randn({8, 16}, rng, 0.0f, 3.0f);
  const Tensor y = softmax_lastdim(x);
  for (std::int64_t r = 0; r < 8; ++r) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < 16; ++c) {
      sum += y(r, c);
      EXPECT_GE(y(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  Tensor x = Tensor::from_data({1, 3}, {1000.0f, 1000.0f, -1000.0f});
  const Tensor y = softmax_lastdim(x);
  EXPECT_NEAR(y(0, 0), 0.5f, 1e-5f);
  EXPECT_NEAR(y(0, 1), 0.5f, 1e-5f);
  EXPECT_NEAR(y(0, 2), 0.0f, 1e-6f);
}

TEST(Softmax, CausalMaskZerosTail) {
  Tensor x = Tensor::full({2, 4}, 1.0f);
  const std::int64_t valid[] = {1, 3};
  kernels::softmax_rows(x.data(), 2, 4, valid);
  EXPECT_FLOAT_EQ(x(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(x(0, 1), 0.0f);
  EXPECT_NEAR(x(1, 2), 1.0f / 3.0f, 1e-6f);
  EXPECT_FLOAT_EQ(x(1, 3), 0.0f);
}

TEST(Silu, ValueAndGradientConsistent) {
  for (float x : {-3.0f, -1.0f, 0.0f, 0.5f, 2.0f}) {
    const double eps = 1e-4;
    const double num =
        (static_cast<double>(silu(x + static_cast<float>(eps))) -
         silu(x - static_cast<float>(eps))) /
        (2 * eps);
    EXPECT_NEAR(silu_grad(x), num, 1e-3) << x;
  }
  EXPECT_FLOAT_EQ(silu(0.0f), 0.0f);
}

}  // namespace
}  // namespace weipipe
