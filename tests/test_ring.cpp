// The bounded lock-free SPSC ring under the fabric's hot path: capacity
// rounding, wraparound, full/empty boundaries, value ownership (move-only
// payloads, refcounted buffers), destruction with messages still in flight,
// and a two-thread stress pass over the seq_cst publication protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/buffer.hpp"
#include "comm/spsc_ring.hpp"

namespace weipipe::comm {
namespace {

TEST(SpscRing, PushPopRoundTrip) {
  SpscRing<int> ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.front(), nullptr);
  EXPECT_EQ(ring.size_approx(), 0u);

  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.try_push(int(i)));
  }
  EXPECT_EQ(ring.size_approx(), 5u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_NE(ring.front(), nullptr);
    EXPECT_EQ(*ring.front(), i);
    ring.pop_front();
  }
  EXPECT_EQ(ring.front(), nullptr);
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(200).capacity(), 256u);
}

TEST(SpscRing, FullRingRejectsWithoutLosingTheValue) {
  SpscRing<std::string> ring(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_push("msg" + std::to_string(i)));
  }
  std::string extra = "overflow-payload";
  EXPECT_FALSE(ring.try_push(std::move(extra)));
  // A rejected push must leave the value intact: the fabric re-routes it to
  // the overflow deque.
  EXPECT_EQ(extra, "overflow-payload");

  // Draining one slot makes room again.
  ring.pop_front();
  EXPECT_TRUE(ring.try_push(std::move(extra)));
  EXPECT_EQ(*ring.front(), "msg1");
}

TEST(SpscRing, SingleSlotCapacity) {
  SpscRing<int> ring(1);
  EXPECT_EQ(ring.capacity(), 1u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ring.try_push(int(i)));
    EXPECT_FALSE(ring.try_push(int(-1)));  // full at depth one
    ASSERT_NE(ring.front(), nullptr);
    EXPECT_EQ(*ring.front(), i);
    ring.pop_front();
    EXPECT_EQ(ring.front(), nullptr);
  }
}

TEST(SpscRing, WraparoundPreservesFifoOrder) {
  SpscRing<std::uint64_t> ring(8);
  std::uint64_t produced = 0;
  std::uint64_t consumed = 0;
  // Many times around the ring with a sawtooth fill level, crossing the
  // index wrap repeatedly.
  for (int round = 0; round < 1000; ++round) {
    const int burst = 1 + (round % 7);
    for (int i = 0; i < burst; ++i) {
      if (ring.try_push(std::uint64_t(produced))) {
        ++produced;
      }
    }
    const int drain = 1 + ((round * 3) % 7);
    for (int i = 0; i < drain; ++i) {
      const std::uint64_t* front = ring.front();
      if (front == nullptr) {
        break;
      }
      EXPECT_EQ(*front, consumed);
      ring.pop_front();
      ++consumed;
    }
  }
  while (const std::uint64_t* front = ring.front()) {
    EXPECT_EQ(*front, consumed);
    ring.pop_front();
    ++consumed;
  }
  EXPECT_EQ(consumed, produced);
  EXPECT_GT(produced, 1000u);  // actually wrapped many times
}

TEST(SpscRing, MoveOnlyValues) {
  SpscRing<std::unique_ptr<int>> ring(4);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(41)));
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(42)));
  ASSERT_NE(ring.front(), nullptr);
  std::unique_ptr<int> taken = std::move(*ring.front());
  ring.pop_front();
  EXPECT_EQ(*taken, 41);
  EXPECT_EQ(**ring.front(), 42);
}

TEST(SpscRing, DestructionReleasesInFlightValues) {
  // Destroying a non-empty ring must run the destructor of every slot in
  // [head, tail) — refcounted buffers still enqueued get released.
  Buffer payload = Buffer::allocate(1024);
  EXPECT_EQ(payload.use_count(), 1);
  {
    SpscRing<Buffer> ring(8);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(ring.try_push(Buffer(payload)));
    }
    ring.pop_front();  // mix consumed and in-flight slots
    EXPECT_EQ(payload.use_count(), 1 + 4);
  }
  EXPECT_EQ(payload.use_count(), 1);
}

TEST(SpscRing, DestructionAfterWraparound) {
  Buffer payload = Buffer::allocate(64);
  {
    SpscRing<Buffer> ring(4);
    // Advance the cursors past the first lap so the live region straddles
    // the wrap, then leave messages in flight.
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(ring.try_push(Buffer(payload)));
      if (i < 3) {
        ring.pop_front();
      }
    }
    EXPECT_EQ(payload.use_count(), 1 + 3);
  }
  EXPECT_EQ(payload.use_count(), 1);
}

TEST(SpscRing, TwoThreadStream) {
  // One producer thread, one consumer thread (the fabric's exact shape);
  // under TSan this exercises the acquire/release + seq_cst protocol.
  constexpr std::uint64_t kCount = 200000;
  SpscRing<std::uint64_t> ring(64);
  std::atomic<bool> failed{false};
  std::thread consumer([&] {
    std::uint64_t expect = 0;
    while (expect < kCount) {
      const std::uint64_t* front = ring.front();
      if (front == nullptr) {
        std::this_thread::yield();
        continue;
      }
      if (*front != expect) {
        failed.store(true);
        return;
      }
      ring.pop_front();
      ++expect;
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!ring.try_push(std::uint64_t(i))) {
      std::this_thread::yield();
    }
  }
  consumer.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(ring.front(), nullptr);
}

TEST(CommBuffer, AllocateAdoptAndRelease) {
  Buffer tracked = Buffer::allocate(100);
  EXPECT_TRUE(tracked.tracked());
  EXPECT_EQ(tracked.size(), 100u);
  EXPECT_TRUE(tracked.unique());

  std::vector<std::uint8_t> bytes{1, 2, 3, 4};
  const std::uint8_t* raw = bytes.data();
  Buffer adopted = Buffer::adopt(std::move(bytes));
  EXPECT_FALSE(adopted.tracked());
  EXPECT_EQ(adopted.size(), 4u);
  // Adoption moves the vector: same storage, no copy.
  EXPECT_EQ(adopted.data(), raw);

  // Unique adopted buffer releases its vector without copying.
  std::vector<std::uint8_t> back = adopted.release_vector();
  EXPECT_EQ(back.data(), raw);
  EXPECT_FALSE(static_cast<bool>(adopted));

  // Shared buffers hand out a copy instead (other holders keep reading).
  std::vector<std::uint8_t> more{9, 8, 7};
  Buffer shared = Buffer::adopt(std::move(more));
  Buffer alias = shared;
  EXPECT_EQ(shared.use_count(), 2);
  std::vector<std::uint8_t> copy = alias.release_vector();
  EXPECT_EQ(copy, (std::vector<std::uint8_t>{9, 8, 7}));
  EXPECT_EQ(shared.size(), 3u);  // survivor still owns the bytes
}

}  // namespace
}  // namespace weipipe::comm
