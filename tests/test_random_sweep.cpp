// Randomized robustness sweeps ("fuzz-lite"): seeded random model/run shapes
// through the full equivalence stack, and randomized schedule-parameter
// sweeps through the validator + engine. Failures print the offending shape
// so they can be pinned as regression cases.
#include <gtest/gtest.h>

#include <sstream>

#include "baselines/fsdp_trainer.hpp"
#include "baselines/pipeline_trainer.hpp"
#include "common/rng.hpp"
#include "core/sequential_trainer.hpp"
#include "core/weipipe_trainer.hpp"
#include "sched/builders.hpp"
#include "sched/validate.hpp"
#include "sim/engine.hpp"

namespace weipipe {
namespace {

struct RandomShape {
  TrainConfig cfg;
  std::int64_t workers;
  WeiPipeMode mode;
  std::string describe;
};

RandomShape draw_shape(std::uint64_t seed) {
  Rng rng(seed * 2654435761u + 17);
  RandomShape out;
  TrainConfig& cfg = out.cfg;
  cfg.model.vocab_size = 16 + static_cast<std::int64_t>(rng.next_below(48));
  const std::int64_t heads = 1 + static_cast<std::int64_t>(rng.next_below(4));
  cfg.model.n_heads = heads;
  cfg.model.dim = heads * 2 * (1 + static_cast<std::int64_t>(rng.next_below(4)));
  cfg.model.n_layers = 2 + static_cast<std::int64_t>(rng.next_below(5));
  // Sometimes grouped-query attention.
  if (rng.next_below(3) == 0 && heads % 2 == 0) {
    cfg.model.n_kv_heads = heads / 2;
  }
  cfg.model.flash_attention = rng.next_below(2) == 0;
  cfg.model.recompute = rng.next_below(2) == 0;
  cfg.model.seq_len = 4 + 2 * static_cast<std::int64_t>(rng.next_below(7));
  cfg.seq_len = cfg.model.seq_len;
  cfg.microbatch_size = 1 + static_cast<std::int64_t>(rng.next_below(3));
  // Workers must divide layers' count constraint (P <= L) and N % P == 0.
  out.workers =
      2 + static_cast<std::int64_t>(rng.next_below(
              static_cast<std::uint64_t>(std::max<std::int64_t>(
                  1, cfg.model.n_layers - 1))));
  out.workers = std::min(out.workers, cfg.model.n_layers);
  const std::int64_t rounds = 1 + static_cast<std::int64_t>(rng.next_below(3));
  cfg.num_microbatches = out.workers * rounds;
  cfg.seed = seed * 101 + 7;
  out.mode = rng.next_below(2) == 0 ? WeiPipeMode::kInterleave
                                    : WeiPipeMode::kNaive;
  std::ostringstream oss;
  oss << "seed=" << seed << " V=" << cfg.model.vocab_size
      << " H=" << cfg.model.dim << " L=" << cfg.model.n_layers
      << " heads=" << cfg.model.n_heads << " kv=" << cfg.model.n_kv_heads
      << " S=" << cfg.seq_len << " G=" << cfg.microbatch_size
      << " N=" << cfg.num_microbatches << " P=" << out.workers << " "
      << to_string(out.mode) << (cfg.model.flash_attention ? " flash" : "")
      << (cfg.model.recompute ? " recompute" : "");
  out.describe = oss.str();
  return out;
}

float params_max_diff(const std::vector<std::vector<float>>& a,
                      const std::vector<std::vector<float>>& b) {
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      m = std::max(m, std::fabs(a[i][j] - b[i][j]));
    }
  }
  return m;
}

class RandomEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomEquivalence, WeiPipeBitwiseOnRandomShape) {
  const RandomShape shape = draw_shape(GetParam());
  SCOPED_TRACE(shape.describe);
  SequentialTrainer ref(shape.cfg);
  WeiPipeTrainer t(shape.cfg, shape.workers, {.mode = shape.mode});
  SyntheticDataset data(shape.cfg.model.vocab_size, shape.cfg.seed);
  for (int it = 0; it < 2; ++it) {
    const IterationResult a = ref.train_iteration(data, it);
    const IterationResult b = t.train_iteration(data, it);
    ASSERT_EQ(a.mean_loss, b.mean_loss);
  }
  EXPECT_EQ(params_max_diff(ref.gather_block_params(),
                            t.gather_block_params()),
            0.0f);
}

TEST_P(RandomEquivalence, PipelineBitwiseOnRandomShape) {
  const RandomShape shape = draw_shape(GetParam() + 1000);
  SCOPED_TRACE(shape.describe);
  SequentialTrainer ref(shape.cfg);
  PipelineTrainer t(shape.cfg, shape.workers);
  SyntheticDataset data(shape.cfg.model.vocab_size, shape.cfg.seed);
  (void)ref.train_iteration(data, 0);
  (void)t.train_iteration(data, 0);
  EXPECT_EQ(params_max_diff(ref.gather_block_params(),
                            t.gather_block_params()),
            0.0f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEquivalence,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- randomized schedule programs -------------------------------------------------

class RandomSchedules : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSchedules, BuildersValidateAndSimulateForRandomParams) {
  Rng rng(GetParam() * 7919 + 3);
  const std::int64_t p = 2 + static_cast<std::int64_t>(rng.next_below(7));
  const std::int64_t rounds = 1 + static_cast<std::int64_t>(rng.next_below(5));
  const std::int64_t n = p * rounds;
  sched::StrategyCosts costs;
  for (std::int64_t i = 0; i < p; ++i) {
    costs.fwd_seconds.push_back(0.5f + rng.uniform(0.0f, 2.0f));
    costs.bwd_seconds.push_back(costs.fwd_seconds.back() *
                                (1.5f + rng.uniform(0.0f, 2.0f)));
    costs.bwd_acts_seconds.push_back(costs.fwd_seconds.back());
    costs.bwd_weights_seconds.push_back(costs.fwd_seconds.back());
    costs.chunk_weight_bytes.push_back(1.0 + rng.next_below(1000));
    costs.act_mem_bytes.push_back(1.0 + rng.next_below(100));
  }
  costs.act_bytes = 1.0 + rng.next_below(1000);
  costs.act_grad_bytes = costs.act_bytes;

  SCOPED_TRACE("p=" + std::to_string(p) + " rounds=" + std::to_string(rounds));
  const sim::Topology topo = sim::Topology::hierarchical(
      static_cast<int>(p), std::max<int>(1, static_cast<int>(p) / 2),
      sim::Link{1e9, 1e-6}, sim::Link{1e6, 1e-4}, "rand");

  const sched::Program programs[] = {
      sched::build_gpipe(p, n, costs),
      sched::build_1f1b(p, n, costs),
      sched::build_zero_bubble(p, n, sched::ZbVariant::kZb1, costs),
      sched::build_zero_bubble(p, n, sched::ZbVariant::kZb2, costs),
      sched::build_weipipe(WeiPipeSchedule(p, rounds, WeiPipeMode::kNaive),
                           costs),
      sched::build_weipipe(
          WeiPipeSchedule(p, rounds, WeiPipeMode::kInterleave), costs),
      sched::build_weipipe(
          WeiPipeSchedule(p, rounds, WeiPipeMode::kInterleave), costs,
          /*prefetch=*/false),
      sched::build_weipipe_zero_bubble(p, rounds, sched::WzbVariant::kWzb1,
                                       costs),
      sched::build_weipipe_zero_bubble(p, rounds, sched::WzbVariant::kWzb2,
                                       costs),
  };
  for (const sched::Program& prog : programs) {
    const sched::ValidationReport report = sched::validate(prog);
    ASSERT_TRUE(report.ok) << prog.name << ": "
                           << (report.problems.empty() ? ""
                                                       : report.problems[0]);
    const sim::SimResult res = sim::simulate(prog, topo);
    EXPECT_GT(res.makespan, 0.0) << prog.name;
    EXPECT_LE(res.bubble_ratio(), 1.0) << prog.name;
    EXPECT_GE(res.bubble_ratio(), 0.0) << prog.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSchedules,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace weipipe
