// Software fp16/bf16: conversions, rounding behaviour, edge cases, and the
// wire-precision helpers the fabric relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/fixed_types.hpp"
#include "common/rng.hpp"

namespace weipipe {
namespace {

TEST(Float16, ExactSmallValues) {
  // Values exactly representable in fp16 round-trip unchanged.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f, 65504.0f}) {
    EXPECT_EQ(Float16(v).to_float(), v) << v;
  }
}

TEST(Float16, KnownBitPatterns) {
  EXPECT_EQ(Float16(1.0f).bits(), 0x3C00u);
  EXPECT_EQ(Float16(-2.0f).bits(), 0xC000u);
  EXPECT_EQ(Float16(65504.0f).bits(), 0x7BFFu);  // max finite half
  EXPECT_EQ(Float16(0.0f).bits(), 0x0000u);
  EXPECT_EQ(Float16(-0.0f).bits(), 0x8000u);
}

TEST(Float16, OverflowToInfinity) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(Float16(65536.0f).bits(), 0x7C00u);
  EXPECT_EQ(Float16(1e10f).to_float(), inf);
  EXPECT_EQ(Float16(-1e10f).to_float(), -inf);
  EXPECT_EQ(Float16(inf).to_float(), inf);
}

TEST(Float16, SubnormalsRoundTrip) {
  // Smallest positive subnormal half = 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(Float16(tiny).to_float(), tiny);
  // Below half of the smallest subnormal flushes to zero.
  EXPECT_EQ(Float16(std::ldexp(1.0f, -26)).to_float(), 0.0f);
  // Smallest normal half = 2^-14.
  const float min_normal = std::ldexp(1.0f, -14);
  EXPECT_EQ(Float16(min_normal).to_float(), min_normal);
}

TEST(Float16, RoundToNearestEven) {
  // 1 + 2^-11 is exactly between 1.0 and 1+2^-10: ties to even (1.0).
  const float mid = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(Float16(mid).to_float(), 1.0f);
  // 1 + 3*2^-11 ties to 1 + 2*2^-11 (even mantissa).
  const float mid2 = 1.0f + 3.0f * std::ldexp(1.0f, -11);
  EXPECT_EQ(Float16(mid2).to_float(), 1.0f + std::ldexp(1.0f, -9));
}

TEST(Float16, NanPreserved) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(Float16(nan).to_float()));
}

TEST(Float16, QuantizationIsIdempotent) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.normal(0.0f, 10.0f);
    const float once = quantize_f16(v);
    EXPECT_EQ(once, quantize_f16(once)) << v;
  }
}

TEST(Float16, RelativeErrorBounded) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-1000.0f, 1000.0f);
    if (std::fabs(v) < 1e-3f) {
      continue;
    }
    const float q = quantize_f16(v);
    // Half has 10 mantissa bits: rel error <= 2^-11.
    EXPECT_LE(std::fabs(q - v) / std::fabs(v), std::ldexp(1.0f, -11) * 1.01f);
  }
}

TEST(BFloat16, ExactValues) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 3.0f * std::ldexp(1.0f, 20)}) {
    EXPECT_EQ(BFloat16(v).to_float(), v) << v;
  }
}

TEST(BFloat16, HugeDynamicRange) {
  // bf16 shares fp32's exponent: 1e38 survives, unlike fp16.
  EXPECT_NEAR(BFloat16(1e38f).to_float(), 1e38f, 1e36f);
  EXPECT_NEAR(BFloat16(1e-38f).to_float(), 1e-38f, 1e-40f);
}

TEST(BFloat16, RelativeErrorBounded) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.normal(0.0f, 100.0f);
    if (std::fabs(v) < 1e-6f) {
      continue;
    }
    // bf16 has 7 mantissa bits: rel error <= 2^-8.
    EXPECT_LE(std::fabs(BFloat16(v).to_float() - v) / std::fabs(v),
              std::ldexp(1.0f, -8) * 1.01f);
  }
}

TEST(BFloat16, NanPreserved) {
  EXPECT_TRUE(std::isnan(
      BFloat16(std::numeric_limits<float>::quiet_NaN()).to_float()));
}

TEST(BFloat16, QuantizationIsIdempotent) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.normal(0.0f, 1.0f);
    const float once = quantize_bf16(v);
    EXPECT_EQ(once, quantize_bf16(once));
  }
}

TEST(WirePrecision, BytesPerElement) {
  EXPECT_EQ(wire_bytes_per_element(WirePrecision::Fp32), 4u);
  EXPECT_EQ(wire_bytes_per_element(WirePrecision::Fp16), 2u);
  EXPECT_EQ(wire_bytes_per_element(WirePrecision::Bf16), 2u);
}

TEST(WirePrecision, QuantizeDispatch) {
  const float v = 1.0009766f;  // not representable in fp16
  EXPECT_EQ(quantize(v, WirePrecision::Fp32), v);
  EXPECT_EQ(quantize(v, WirePrecision::Fp16), quantize_f16(v));
  EXPECT_EQ(quantize(v, WirePrecision::Bf16), quantize_bf16(v));
}

// Property: fp16 round-trip is monotone (order preserving) on finite values.
TEST(Float16, MonotoneQuantization) {
  Rng rng(1234);
  for (int i = 0; i < 500; ++i) {
    const float a = rng.normal(0.0f, 50.0f);
    const float b = rng.normal(0.0f, 50.0f);
    const float qa = quantize_f16(std::min(a, b));
    const float qb = quantize_f16(std::max(a, b));
    EXPECT_LE(qa, qb);
  }
}

}  // namespace
}  // namespace weipipe
