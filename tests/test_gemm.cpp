// Tiled-GEMM engine checks: every orientation against the retained naive
// references over an adversarial shape sweep (micro/macro tile edges, odd
// sizes, degenerate dims), strided views, accumulate semantics, bitwise
// determinism under the thread pool, and an end-to-end gradcheck through a
// transformer layer so the whole kernel stack is exercised at once.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "gradcheck.hpp"
#include "nn/model.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace weipipe {
namespace {

using testing::gradient_max_rel_error;
using testing::numeric_gradient;

constexpr float kRelTol = 1e-5f;

float max_rel_diff(const float* a, const float* b, std::int64_t n) {
  float worst = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    const float denom =
        std::max(1.0f, std::max(std::fabs(a[i]), std::fabs(b[i])));
    worst = std::max(worst, std::fabs(a[i] - b[i]) / denom);
  }
  return worst;
}

// Micro-tile edges (1..9), macro-tile edges (63..129), and odd sizes in
// between; 1 exercises the degenerate vector/row paths in every dim.
const std::int64_t kSweep[] = {1, 3, 8, 17, 33, 65, 129};

using KernelFn = void (*)(const float*, const float*, float*, std::int64_t,
                          std::int64_t, std::int64_t, bool);

void sweep_against_reference(KernelFn tiled, KernelFn reference) {
  for (std::int64_t m : kSweep) {
    for (std::int64_t k : kSweep) {
      for (std::int64_t n : kSweep) {
        for (bool accumulate : {false, true}) {
          Rng rng(m * 1000003 + k * 1009 + n + (accumulate ? 7 : 0));
          Tensor a = Tensor::randn({m, k}, rng);
          Tensor b = Tensor::randn({k, n}, rng);  // laid out per orientation
          Tensor c_tiled = Tensor::randn({m, n}, rng);
          Tensor c_ref = c_tiled;
          tiled(a.data(), b.data(), c_tiled.data(), m, k, n, accumulate);
          reference(a.data(), b.data(), c_ref.data(), m, k, n, accumulate);
          ASSERT_LT(max_rel_diff(c_tiled.data(), c_ref.data(), m * n), kRelTol)
              << "m=" << m << " k=" << k << " n=" << n
              << " accumulate=" << accumulate;
        }
      }
    }
  }
}

TEST(Gemm, MatmulMatchesNaiveOverSweep) {
  sweep_against_reference(&kernels::matmul, &kernels::matmul_naive);
}

TEST(Gemm, MatmulBtMatchesNaiveOverSweep) {
  sweep_against_reference(&kernels::matmul_bt, &kernels::matmul_bt_naive);
}

TEST(Gemm, MatmulAtMatchesNaiveOverSweep) {
  sweep_against_reference(&kernels::matmul_at, &kernels::matmul_at_naive);
}

TEST(Gemm, ZeroKZeroesOrPreserves) {
  Tensor c = Tensor::full({3, 4}, 2.5f);
  kernels::gemm(nullptr, 0, 0, nullptr, 0, 0, c.data(), 4, 3, 0, 4,
                /*accumulate=*/true);
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_EQ(c.data()[i], 2.5f);
  }
  kernels::gemm(nullptr, 0, 0, nullptr, 0, 0, c.data(), 4, 3, 0, 4,
                /*accumulate=*/false);
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_EQ(c.data()[i], 0.0f);
  }
}

// The strided engine must address sub-matrices of larger buffers (WeiPipe
// weight chunks are flat buffers; layers take views) and must not touch
// anything outside the view.
TEST(Gemm, StridedViewsMatchCompactAndPreservePadding) {
  const std::int64_t m = 37, k = 53, n = 29;
  const std::int64_t a_ld = k + 5, b_ld = n + 3, c_ld = n + 7;
  Rng rng(99);
  Tensor a_full = Tensor::randn({m, a_ld}, rng);
  Tensor b_full = Tensor::randn({k, b_ld}, rng);
  Tensor c_full = Tensor::full({m, c_ld}, 123.0f);

  kernels::gemm(a_full.data(), a_ld, 1, b_full.data(), b_ld, 1, c_full.data(),
                c_ld, m, k, n, /*accumulate=*/false);

  // Compact copies through the naive reference.
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (std::int64_t i = 0; i < m; ++i) {
    std::memcpy(&a[static_cast<std::size_t>(i * k)], a_full.data() + i * a_ld,
                static_cast<std::size_t>(k) * sizeof(float));
  }
  for (std::int64_t p = 0; p < k; ++p) {
    std::memcpy(&b[static_cast<std::size_t>(p * n)], b_full.data() + p * b_ld,
                static_cast<std::size_t>(n) * sizeof(float));
  }
  kernels::matmul_naive(a.data(), b.data(), c.data(), m, k, n,
                        /*accumulate=*/false);

  for (std::int64_t i = 0; i < m; ++i) {
    ASSERT_LT(max_rel_diff(c_full.data() + i * c_ld,
                           &c[static_cast<std::size_t>(i * n)], n),
              kRelTol)
        << "row " << i;
    for (std::int64_t j = n; j < c_ld; ++j) {
      ASSERT_EQ(c_full.data()[i * c_ld + j], 123.0f)
          << "padding touched at (" << i << "," << j << ")";
    }
  }
}

// Column-strided A and B (both transposed via strides, not layout).
TEST(Gemm, TransposedStridesMatchExplicitTranspose) {
  const std::int64_t m = 41, k = 23, n = 35;
  Rng rng(7);
  Tensor at = Tensor::randn({k, m}, rng);  // A^T stored row-major
  Tensor bt = Tensor::randn({n, k}, rng);  // B^T stored row-major
  Tensor c({m, n});
  // A(i,p) = at[p*m + i], B(p,j) = bt[j*k + p].
  kernels::gemm(at.data(), 1, m, bt.data(), 1, k, c.data(), n, m, k, n,
                /*accumulate=*/false);

  Tensor a({m, k});
  Tensor b({k, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = 0; p < k; ++p) {
      a.data()[i * k + p] = at.data()[p * m + i];
    }
  }
  for (std::int64_t p = 0; p < k; ++p) {
    for (std::int64_t j = 0; j < n; ++j) {
      b.data()[p * n + j] = bt.data()[j * k + p];
    }
  }
  Tensor c_ref({m, n});
  kernels::matmul_naive(a.data(), b.data(), c_ref.data(), m, k, n,
                        /*accumulate=*/false);
  EXPECT_LT(max_rel_diff(c.data(), c_ref.data(), m * n), kRelTol);
}

// The K-reduction order is fixed by the blocking, not by which thread claims
// which tile — repeated runs must agree bit-for-bit (trainer-equivalence
// tests depend on this).
TEST(Gemm, BitwiseDeterministicAcrossRuns) {
  const std::int64_t m = 191, k = 160, n = 170;
  Rng rng(5);
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor first({m, n});
  kernels::matmul(a.data(), b.data(), first.data(), m, k, n, false);
  for (int run = 0; run < 5; ++run) {
    Tensor c({m, n});
    kernels::matmul(a.data(), b.data(), c.data(), m, k, n, false);
    ASSERT_EQ(std::memcmp(first.data(), c.data(),
                          static_cast<std::size_t>(m * n) * sizeof(float)),
              0)
        << "run " << run;
  }
}

// End-to-end: a full transformer layer (attention + SwiGLU, every GEMM
// orientation, the lifted layer_math kernels) still passes a numeric
// gradient check after the kernel rework.
TEST(Gemm, TransformerLayerGradCheckThroughTiledKernels) {
  ModelConfig cfg;
  cfg.vocab_size = 16;
  cfg.dim = 8;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.seq_len = 5;
  cfg.ffn_hidden = 12;
  TransformerLayerBlock block(cfg);
  SyntheticDataset data(cfg.vocab_size, 17);
  const Microbatch mb = data.make(0, 1, cfg.seq_len);
  Rng rng(31);
  std::vector<float> w(static_cast<std::size_t>(block.param_count()));
  block.init_params(w, rng);
  Tensor x = Tensor::randn({mb.rows(), cfg.dim}, rng);
  const Tensor dy = Tensor::randn({mb.rows(), cfg.dim}, rng);

  auto loss = [&](std::span<const float> wp, const Tensor& xp) {
    BlockCtx ctx;
    const Tensor y = block.forward(wp, mb, xp, ctx, true);
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      acc += static_cast<double>(y.data()[i]) * dy.data()[i];
    }
    return acc;
  };

  BlockCtx ctx;
  (void)block.forward(std::span<const float>(w.data(), w.size()), mb, x, ctx,
                      true);
  std::vector<float> dw(w.size(), 0.0f);
  const Tensor dx = block.backward(std::span<const float>(w.data(), w.size()),
                                   mb, ctx, dy,
                                   std::span<float>(dw.data(), dw.size()));

  const auto num_dx = numeric_gradient(
      [&](std::span<const float> p) {
        Tensor xx = Tensor::from_data(
            {mb.rows(), cfg.dim}, std::vector<float>(p.begin(), p.end()));
        return loss(std::span<const float>(w.data(), w.size()), xx);
      },
      x.span());
  EXPECT_LT(gradient_max_rel_error(dx.span(), num_dx), 5e-3);

  const auto num_dw = numeric_gradient(
      [&](std::span<const float> p) { return loss(p, x); },
      std::span<float>(w.data(), w.size()));
  EXPECT_LT(gradient_max_rel_error(std::span<const float>(dw.data(), dw.size()),
                                   num_dw),
            5e-3);
}

}  // namespace
}  // namespace weipipe
