// Cluster planner: pick a training strategy for *your* model on *your*
// cluster, using the calibrated discrete-event simulator.
//
//   ./examples/cluster_planner [H] [S] [G] [L] [gpus] [gpus_per_node] [env]
//     env: nvlink | pcie | ethernet     (default: nvlink)
//
// Example: a 6B-parameter model with 16k context on 16 GPUs across 4 PCIe
// nodes:  ./examples/cluster_planner 4096 16384 4 32 16 4 pcie
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/experiment.hpp"

using namespace weipipe;
using namespace weipipe::sim;

int main(int argc, char** argv) {
  ModelDims dims;
  dims.hidden = argc > 1 ? std::atoll(argv[1]) : 2048;
  dims.seq = argc > 2 ? std::atoll(argv[2]) : 8192;
  dims.microbatch = argc > 3 ? std::atoll(argv[3]) : 8;
  dims.layers = argc > 4 ? std::atoll(argv[4]) : 32;
  const int gpus = argc > 5 ? std::atoi(argv[5]) : 16;
  const int per_node = argc > 6 ? std::atoi(argv[6]) : 8;
  const std::string env = argc > 7 ? argv[7] : "nvlink";

  Topology topo = env == "pcie" ? Topology::pcie_ethernet(gpus, per_node)
                  : env == "ethernet"
                      ? Topology::nvlink_ethernet(gpus, per_node)
                      : Topology::nvlink(gpus, per_node);

  std::printf("Model: H=%lld S=%lld G=%lld L=%lld (%.2fB params)\n",
              static_cast<long long>(dims.hidden),
              static_cast<long long>(dims.seq),
              static_cast<long long>(dims.microbatch),
              static_cast<long long>(dims.layers),
              static_cast<double>(dims.total_params()) / 1e9);
  std::printf("Cluster: %d x A800 (%d per node), fabric '%s', %d node(s)\n\n",
              gpus, per_node, topo.name().c_str(), topo.nodes());

  std::printf("%-20s | %14s | %9s | %8s | %9s\n", "strategy", "tokens/s/GPU",
              "mem GB", "bubble", "wire GB");
  std::printf("%s\n", std::string(75, '-').c_str());

  Strategy best = Strategy::k1F1B;
  double best_tp = 0.0;
  for (Strategy s :
       {Strategy::kGPipe, Strategy::k1F1B, Strategy::kZB1, Strategy::kZB2,
        Strategy::kFSDP, Strategy::kWeiPipeNaive,
        Strategy::kWeiPipeInterleave, Strategy::kWZB1, Strategy::kWZB2}) {
    ExperimentConfig cfg;
    cfg.dims = dims;
    cfg.num_microbatches = 16 * gpus;
    cfg.strategy = s;
    const ExperimentResult res = run_experiment(cfg, topo);
    if (res.oom) {
      std::printf("%-20s | %14s | %8.1fG | %7.1f%% | %9.1f\n", to_string(s),
                  "OOM", res.peak_mem_bytes / 1e9, res.bubble_ratio * 100,
                  res.wire_bytes / 1e9);
      continue;
    }
    std::printf("%-20s | %14.0f | %8.1fG | %7.1f%% | %9.1f\n", to_string(s),
                res.tokens_per_second_per_gpu, res.peak_mem_bytes / 1e9,
                res.bubble_ratio * 100, res.wire_bytes / 1e9);
    if (res.tokens_per_second_per_gpu > best_tp) {
      best_tp = res.tokens_per_second_per_gpu;
      best = s;
    }
  }
  std::printf("\nrecommendation: %s (%.0f tokens/s/GPU)\n", to_string(best),
              best_tp);
  const double ratio = static_cast<double>(dims.microbatch) * dims.seq /
                       (12.0 * dims.hidden);
  std::printf("paper's rule of thumb: G*S/(12H) = %.2f => %s-passing should "
              "be cheaper per layer\n",
              ratio, ratio > 1.0 ? "weight" : "activation");
  return 0;
}
