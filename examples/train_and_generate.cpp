// End-to-end workflow: train a small model with WeiPipe (LR schedule +
// gradient clipping), checkpoint mid-run, resume on a *different* ring size,
// and finally sample from the trained model to show it learned the synthetic
// language's affine recurrence.
//
//   ./examples/train_and_generate [total_iters] [checkpoint_path]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/checkpoint.hpp"
#include "core/weipipe_trainer.hpp"
#include "nn/generate.hpp"

using namespace weipipe;

int main(int argc, char** argv) {
  const int total_iters = argc > 1 ? std::atoi(argv[1]) : 240;
  const std::string ckpt_path =
      argc > 2 ? argv[2] : "/tmp/weipipe_example.ckpt";

  TrainConfig cfg;
  cfg.model.vocab_size = 16;
  cfg.model.dim = 48;
  cfg.model.n_layers = 4;
  cfg.model.n_heads = 4;
  cfg.model.seq_len = 16;
  cfg.num_microbatches = 8;
  cfg.microbatch_size = 2;
  cfg.seq_len = 16;
  cfg.seed = 7777;
  cfg.adam.lr = 5e-3f;
  cfg.lr_schedule.warmup_iters = 10;
  // Decay gently: keep a healthy LR through the end of this short run.
  cfg.lr_schedule.total_iters = 4 * total_iters;
  cfg.lr_schedule.min_lr_fraction = 0.5f;
  cfg.clip.max_norm = 1.0f;

  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  const int half = total_iters / 2;

  std::printf("phase 1: %d iterations on a 4-worker WeiPipe ring\n", half);
  {
    WeiPipeTrainer trainer(cfg, 4);
    for (int it = 0; it < half; ++it) {
      const IterationResult r = trainer.train_iteration(data, it);
      if (it % 20 == 0) {
        std::printf("  iter %3d  loss %.4f\n", it, r.mean_loss);
      }
    }
    save_checkpoint(ckpt_path, trainer.export_state());
    std::printf("checkpoint written to %s\n\n", ckpt_path.c_str());
  }

  std::printf("phase 2: resume on a 2-worker ring from the checkpoint\n");
  WeiPipeTrainer trainer(cfg, 2);
  trainer.import_state(load_checkpoint(ckpt_path));
  float final_loss = 0.0f;
  for (int it = half; it < total_iters; ++it) {
    const IterationResult r = trainer.train_iteration(data, it);
    final_loss = r.mean_loss;
    if (it % 20 == 0) {
      std::printf("  iter %3d  loss %.4f\n", it, r.mean_loss);
    }
  }
  std::printf("final loss %.4f\n\n", final_loss);

  // Sample: feed a prefix of a training sequence and continue it greedily.
  Model model(cfg.model);
  const auto params = trainer.gather_block_params();
  const Microbatch mb = data.make(0, 1, cfg.seq_len);
  std::vector<std::int32_t> prompt(mb.tokens.begin(), mb.tokens.begin() + 8);
  GenerateOptions opts;
  opts.max_new_tokens = 6;
  const auto out = generate(model, params, prompt, opts);

  std::printf("prompt    : ");
  for (std::size_t i = 0; i < 8; ++i) {
    std::printf("%2d ", prompt[i]);
  }
  std::printf("\ngenerated : ");
  int correct = 0;
  for (std::size_t i = 8; i < out.size(); ++i) {
    std::printf("%2d ", out[i]);
    if (out[i] == mb.tokens[i]) {
      ++correct;
    }
  }
  std::printf("\nexpected  : ");
  for (std::size_t i = 8; i < 14; ++i) {
    std::printf("%2d ", mb.tokens[i]);
  }
  std::printf("\n%d/6 tokens follow the language's recurrence\n", correct);
  return 0;
}
