// Schedule explorer: render any strategy's pipeline timeline as ASCII art
// (the paper's Figures 1-4, for your own P / rounds / cost ratios).
//
//   ./examples/schedule_explorer [strategy] [P] [rounds] [bwd/fwd ratio]
//     strategy: naive | interleave | wzb1 | wzb2 | gpipe | 1f1b | zb1 | zb2
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sched/builders.hpp"
#include "sim/engine.hpp"
#include "trace/timeline.hpp"

using namespace weipipe;

int main(int argc, char** argv) {
  const std::string strategy = argc > 1 ? argv[1] : "interleave";
  const std::int64_t p = argc > 2 ? std::atoll(argv[2]) : 4;
  const std::int64_t rounds = argc > 3 ? std::atoll(argv[3]) : 2;
  const double ratio = argc > 4 ? std::atof(argv[4]) : 2.0;

  sched::StrategyCosts costs;
  for (std::int64_t i = 0; i < p; ++i) {
    costs.fwd_seconds.push_back(1.0);
    costs.bwd_seconds.push_back(ratio);
    costs.bwd_acts_seconds.push_back(ratio / 2.0);
    costs.bwd_weights_seconds.push_back(ratio / 2.0);
    costs.chunk_weight_bytes.push_back(1.0);
    costs.act_mem_bytes.push_back(1.0);
  }
  costs.act_bytes = 1.0;
  costs.act_grad_bytes = 1.0;

  sched::Program prog;
  const std::int64_t n = rounds * p;
  if (strategy == "naive") {
    prog = sched::build_weipipe(WeiPipeSchedule(p, rounds, WeiPipeMode::kNaive),
                                costs);
  } else if (strategy == "interleave") {
    prog = sched::build_weipipe(
        WeiPipeSchedule(p, rounds, WeiPipeMode::kInterleave), costs);
  } else if (strategy == "wzb1") {
    prog = sched::build_weipipe_zero_bubble(p, rounds,
                                            sched::WzbVariant::kWzb1, costs);
  } else if (strategy == "wzb2") {
    prog = sched::build_weipipe_zero_bubble(p, rounds,
                                            sched::WzbVariant::kWzb2, costs);
  } else if (strategy == "gpipe") {
    prog = sched::build_gpipe(p, n, costs);
  } else if (strategy == "1f1b") {
    prog = sched::build_1f1b(p, n, costs);
  } else if (strategy == "zb1") {
    prog = sched::build_zero_bubble(p, n, sched::ZbVariant::kZb1, costs);
  } else if (strategy == "zb2") {
    prog = sched::build_zero_bubble(p, n, sched::ZbVariant::kZb2, costs);
  } else {
    std::fprintf(stderr,
                 "unknown strategy '%s' (try: naive interleave wzb1 wzb2 "
                 "gpipe 1f1b zb1 zb2)\n",
                 strategy.c_str());
    return 1;
  }

  const sim::Topology topo =
      sim::Topology::uniform(static_cast<int>(p), sim::Link{1e15, 0.0},
                             "ideal");
  const sim::SimResult res = sim::simulate(prog, topo, {.record_ops = true});
  std::printf("%s", trace::render_timeline(res, {.width = 110}).c_str());
  std::printf("\n%s", trace::render_utilization(res).c_str());
  return 0;
}
