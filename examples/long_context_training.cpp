// Long-context training: the paper's motivating scenario.
//
// Sweeps the sequence length on a fixed tiny model and shows, with *measured*
// fabric bytes from real training runs, how activation-passing traffic (1F1B)
// explodes with S while WeiPipe's weight traffic stays flat — then locates
// the crossover the paper derives analytically (G*S vs 12*H).
//
//   ./examples/long_context_training
#include <cstdio>
#include <cstdlib>

#include "baselines/pipeline_trainer.hpp"
#include "core/weipipe_trainer.hpp"

using namespace weipipe;

namespace {

TrainConfig make_config(std::int64_t seq) {
  TrainConfig cfg;
  cfg.model.vocab_size = 64;
  cfg.model.dim = 48;
  cfg.model.n_layers = 4;
  cfg.model.n_heads = 4;
  cfg.model.seq_len = seq;
  cfg.model.recompute = true;
  cfg.num_microbatches = 8;
  cfg.microbatch_size = 2;
  cfg.seq_len = seq;
  cfg.seed = 77;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const long long max_s = argc > 1 ? std::atoll(argv[1]) : 2304;
  const std::int64_t P = 4;
  std::printf("Fixed model: H=48, L=4, G=2, N=8, P=4 workers. Sweeping S.\n");
  std::printf("Per-message crossover (paper §4.1): act G*S*H vs weights "
              "12*H^2 => S* = 6*H/G = %lld tokens.\n",
              static_cast<long long>(6 * 48 / 2));
  std::printf("Total-volume crossover also counts WeiPipe's ring turns "
              "(3 chunks x (R+2)*P turns vs 2*N*(P-1) activation messages),\n"
              "so the measured flip lands later in S:\n\n");
  std::printf("%6s | %14s | %14s | %10s | %s\n", "S", "1F1B wire MB",
              "WeiPipe wire MB", "ratio", "cheaper");
  for (std::int64_t seq : {64LL, 288LL, 576LL, 1152LL, 2304LL}) {
    if (seq > max_s) {
      continue;
    }
    const TrainConfig cfg = make_config(seq);
    SyntheticDataset data(cfg.model.vocab_size, cfg.seed);

    PipelineTrainer f1b(cfg, P);
    const double act_mb =
        static_cast<double>(f1b.train_iteration(data, 0).wire_bytes) / 1e6;

    WeiPipeTrainer wp(cfg, P);
    const double wei_mb =
        static_cast<double>(wp.train_iteration(data, 0).wire_bytes) / 1e6;

    std::printf("%6lld | %14.2f | %14.2f | %10.2f | %s\n",
                static_cast<long long>(seq), act_mb, wei_mb, act_mb / wei_mb,
                act_mb > wei_mb ? "WeiPipe" : "1F1B");
  }

  std::printf(
      "\nBoth runs train the same model on the same data; losses match the\n"
      "sequential reference bit-for-bit in fp32 (see tests). In the paper's\n"
      "regime (H up to 4096, S up to 16k, fp16 wires) the same crossover\n"
      "decides who wins on real clusters — see bench_table2/3.\n");
  return 0;
}
