// Quickstart: train a small Llama-style model with WeiPipe-Interleave over a
// 4-worker in-process ring, watch the loss fall, and verify at the end that
// the distributed run's weights are identical to single-process training.
//
//   ./examples/quickstart [iterations]
#include <cstdio>
#include <cstdlib>

#include "core/sequential_trainer.hpp"
#include "core/weipipe_trainer.hpp"

using namespace weipipe;

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 20;

  // 1. Describe the model and the training run.
  TrainConfig cfg;
  cfg.model.vocab_size = 64;   // synthetic language
  cfg.model.dim = 64;          // hidden size H
  cfg.model.n_layers = 4;      // transformer layers L
  cfg.model.n_heads = 4;
  cfg.model.seq_len = 32;      // context length S
  cfg.model.flash_attention = true;  // streaming attention (O(S) memory)
  cfg.model.recompute = true;        // gradient checkpointing
  cfg.num_microbatches = 8;    // N per iteration
  cfg.microbatch_size = 2;     // G
  cfg.seq_len = 32;
  cfg.adam.lr = 3e-3f;
  cfg.seed = 2024;

  // 2. A WeiPipe trainer: 4 ring workers, weights circulate, activations
  //    never leave a worker. fp32 wire here => bitwise-identical to
  //    sequential training (use PrecisionConfig::paper() for fp16 wires).
  WeiPipeTrainer weipipe(cfg, /*num_workers=*/4);
  SequentialTrainer reference(cfg);

  SyntheticDataset data(cfg.model.vocab_size, cfg.seed);
  std::printf("iter |  weipipe loss | sequential loss | wire MB\n");
  for (int it = 0; it < iterations; ++it) {
    const IterationResult w = weipipe.train_iteration(data, it);
    const IterationResult s = reference.train_iteration(data, it);
    if (it % 5 == 0 || it == iterations - 1) {
      std::printf("%4d | %13.4f | %15.4f | %7.2f\n", it, w.mean_loss,
                  s.mean_loss, static_cast<double>(w.wire_bytes) / 1e6);
    }
  }

  // 3. Verify the distributed weights match the ground truth exactly.
  const auto a = weipipe.gather_block_params();
  const auto b = reference.gather_block_params();
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      max_diff = std::max(max_diff, std::abs(a[i][j] - b[i][j]));
    }
  }
  std::printf("\nmax |weipipe - sequential| over all weights: %g\n", max_diff);
  std::printf(max_diff == 0.0f
                  ? "bitwise identical — the weight pipeline is exact.\n"
                  : "WARNING: runs diverged!\n");
  return max_diff == 0.0f ? 0 : 1;
}
